"""Shared-memory numpy array helpers for the multiprocess cluster runtime.

The process executor must not pickle the graph into every worker task: each
:class:`~repro.cloud.machine.Machine`'s CSR columns are published **once**
into POSIX shared memory and worker processes reconstruct zero-copy numpy
views over the same pages.  These helpers own the mechanics:

* :func:`publish_array` copies one array into a fresh
  ``multiprocessing.shared_memory`` block and returns a picklable
  :class:`SharedArraySpec` describing it;
* :func:`attach_array` maps a spec back into a read-only view (plus the
  ``SharedMemory`` object that must stay referenced while the view lives);
* :class:`SegmentRegistry` tracks every block a publisher created so the
  teardown path (``MemoryCloud.close`` / executor shutdown) can unlink all
  of them exactly once.

A note on CPython's ``resource_tracker``: it registers a segment on
*attach* as well as on create (bpo-39959).  That is harmless here — pool
workers inherit the publisher's tracker (fork and spawn both pass the
tracker fd down), the tracker keeps a per-name *set*, so the attach-side
re-registration dedupes against the publisher's and the single
``unlink`` in :meth:`SegmentRegistry.close` retires the name exactly
once.  Do **not** unregister after attaching: with a shared tracker that
would drop the publisher's registration and make its unlink fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable description of one published array: where and what shape.

    Attributes:
        name: shared-memory block name (``shm_open`` key).
        shape: array shape.
        dtype: numpy dtype string (e.g. ``"int64"``).
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str


def publish_array(array: np.ndarray) -> Tuple[shared_memory.SharedMemory, SharedArraySpec]:
    """Copy ``array`` into a new shared-memory block.

    Returns the owning :class:`SharedMemory` (keep it referenced; closing
    and unlinking it frees the pages) and the :class:`SharedArraySpec` a
    worker needs to attach.  Zero-length arrays are published as 1-byte
    blocks (POSIX shared memory cannot be empty).
    """
    contiguous = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(
        create=True, size=max(1, contiguous.nbytes)
    )
    view = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf)
    view[...] = contiguous
    spec = SharedArraySpec(
        name=segment.name, shape=tuple(contiguous.shape), dtype=str(contiguous.dtype)
    )
    return segment, spec


def attach_array(
    spec: SharedArraySpec, writable: bool = False
) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach to a published array, returning ``(segment, view)``.

    The view aliases the shared pages — it is valid only while ``segment``
    stays open (keep the segment referenced; see the module docstring for
    why the attach-side tracker registration is left in place).  Views are
    read-only by default; ``writable=True`` is for intentionally mutable
    coordination state (e.g. the cooperative join-budget slots), never for
    published graph data.
    """
    segment = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
    if not writable:
        view.flags.writeable = False
    return segment, view


def unlink_block(spec: SharedArraySpec) -> None:
    """Retire a published block by name without materializing its contents.

    Idempotent: a block that was already unlinked (or never existed) is
    silently ignored, so every owner on an error path can call this without
    coordinating who got there first.
    """
    try:
        segment = shared_memory.SharedMemory(name=spec.name)
    except FileNotFoundError:
        return
    segment.close()
    segment.unlink()


class SegmentRegistry:
    """Owns a set of published segments and unlinks them exactly once."""

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._closed = False

    def publish(self, array: np.ndarray) -> SharedArraySpec:
        """Publish ``array``, retaining ownership of the backing segment."""
        if self._closed:
            raise RuntimeError("segment registry is closed")
        segment, spec = publish_array(array)
        self._segments.append(segment)
        return spec

    def segment_names(self) -> List[str]:
        """Names of every live published block (for leak checks)."""
        return [segment.name for segment in self._segments]

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    def close(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments.clear()

    def __enter__(self) -> "SegmentRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
