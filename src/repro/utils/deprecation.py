"""Deprecated-kwarg shims backing the PR-9 API normalization.

The public entry points spell their common knobs one way — ``executor=``,
``workers=``, ``limit=``, ``max_row_budget=`` — but the pre-normalization
spellings (``max_workers=``, ``default_limit=``) keep working for one
deprecation cycle: :func:`shim_renamed_kwarg` forwards the old name to the
new one with a :class:`DeprecationWarning`, and rejects callers passing
both.
"""

from __future__ import annotations

import warnings
from typing import Dict


def shim_renamed_kwarg(
    extra: Dict[str, object],
    old_name: str,
    new_name: str,
    current,
    owner: type,
):
    """Forward a renamed keyword argument, warning about the old spelling.

    Args:
        extra: the ``**deprecated`` catch-all dict; the old name is popped
            out of it so the caller can reject whatever remains.
        old_name / new_name: the rename.
        current: the value bound to the new spelling (``None`` = unset).
        owner: class/function whose signature changed (named in the
            warning).

    Returns:
        The effective value for the new spelling.

    Raises:
        TypeError: when both spellings are passed.
    """
    if old_name not in extra:
        return current
    value = extra.pop(old_name)
    if current is not None:
        raise TypeError(
            f"{owner.__name__} got both {old_name!r} (deprecated) and "
            f"{new_name!r}; pass only {new_name!r}"
        )
    warnings.warn(
        f"{owner.__name__}({old_name}=...) is deprecated; "
        f"use {new_name}= instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return value
