"""Cluster execution runtime: pluggable per-machine fan-out executors.

The engine's two distributed phases — STwig exploration and the per-machine
gather+join — fan out over every machine of the simulated memory cloud.
This package makes that fan-out pluggable (serial / thread pool / process
pool over shared-memory CSR partitions) while preserving, exactly, the
serial model's results and communication counters.  See
:mod:`repro.runtime.executors` for the backends and
:mod:`repro.runtime.shared_cloud` for the zero-copy publication layer.

Backend selection::

    matcher = SubgraphMatcher(cloud, executor="process")        # explicit
    matcher = SubgraphMatcher(cloud)        # REPRO_EXECUTOR env, or serial
"""

from repro.cloud.config import (
    EXECUTOR_BACKENDS,
    EXECUTOR_ENV_VAR,
    RuntimeConfig,
    resolve_backend,
)
from repro.runtime.executors import (
    Executor,
    ExecutorSpec,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
    normalize_executor_spec,
)
from repro.runtime.shared_cloud import (
    CloudHandle,
    publish_cloud,
    publish_tables,
    rebuild_cloud,
)

__all__ = [
    "EXECUTOR_BACKENDS",
    "EXECUTOR_ENV_VAR",
    "CloudHandle",
    "Executor",
    "ExecutorSpec",
    "ProcessExecutor",
    "RuntimeConfig",
    "SerialExecutor",
    "ThreadExecutor",
    "create_executor",
    "normalize_executor_spec",
    "publish_cloud",
    "publish_tables",
    "rebuild_cloud",
    "resolve_backend",
]
