"""Cluster execution runtime: pluggable task-graph executors.

The engine's two distributed phases — STwig exploration and the per-machine
gather+join — are described as batches of :class:`ExploreTask` /
:class:`JoinTask` and submitted through the uniform
:meth:`Executor.run` interface; backends (serial / thread pool / process
pool over shared-memory CSR partitions, with work stealing) differ only in
scheduling while preserving, exactly, the serial model's results and
communication counters.  Results carry their tables as zero-copy
:class:`TableHandle`\\ s end to end.  See :mod:`repro.runtime.executors`
for the backends, :mod:`repro.core.tasks` for the task/handle types, and
:mod:`repro.runtime.shared_cloud` for the graph publication layer.

Backend selection::

    matcher = SubgraphMatcher(cloud, executor="process")        # explicit
    matcher = SubgraphMatcher(cloud)        # REPRO_EXECUTOR env, or serial
"""

from repro.cloud.config import (
    EXECUTOR_BACKENDS,
    EXECUTOR_ENV_VAR,
    RuntimeConfig,
    resolve_backend,
)
from repro.core.tasks import (
    ExploreResult,
    ExploreTask,
    JoinResult,
    JoinTask,
    TableHandle,
)
from repro.runtime.executors import (
    Executor,
    ExecutorSpec,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
    normalize_executor_spec,
)
from repro.runtime.shared_cloud import (
    CloudHandle,
    publish_cloud,
    rebuild_cloud,
)

__all__ = [
    "EXECUTOR_BACKENDS",
    "EXECUTOR_ENV_VAR",
    "CloudHandle",
    "Executor",
    "ExecutorSpec",
    "ExploreResult",
    "ExploreTask",
    "JoinResult",
    "JoinTask",
    "ProcessExecutor",
    "RuntimeConfig",
    "SerialExecutor",
    "TableHandle",
    "ThreadExecutor",
    "create_executor",
    "normalize_executor_spec",
    "publish_cloud",
    "rebuild_cloud",
    "resolve_backend",
]
