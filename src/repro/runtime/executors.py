"""Pluggable executors for the cluster's two per-machine fan-out sites.

The paper's query engine is distributed: every machine matches STwigs over
its partition *concurrently*, and every machine assembles its share of the
answer concurrently.  The reproduction models that cluster with one process,
so the fan-outs used to be plain ``for machine_id in range(...)`` loops.
The executors here make the fan-out pluggable:

* :class:`SerialExecutor` — runs tasks inline, in machine order.  This is
  the parity oracle: the other backends must produce row-for-row identical
  results **and** identical communication counters.
* :class:`ThreadExecutor` — a thread pool over the shared in-process store.
  Numpy kernels release the GIL, so batched matching overlaps.
* :class:`ProcessExecutor` — a process pool over shared-memory CSR
  partitions (see :mod:`repro.runtime.shared_cloud`).  The graph is
  published once; workers rebuild zero-copy views lazily and keep their own
  dense-table caches, which is the closest single-host model of the paper's
  memory cloud: partition-parallel workers over shared immutable storage
  with a thin merge layer on the proxy.

Metric faithfulness is structural: every task runs against a
metrics-scoped view of the cloud (:meth:`MemoryCloud.with_metrics`), and
the isolated counters are merged back **in machine-ID order**.  Counter
totals are sums, so any schedule aggregates to exactly the serial model's
metrics — the invariant the parity suite asserts.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import weakref
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import RuntimeConfig, resolve_backend
from repro.cloud.metrics import CloudMetrics
from repro.core.bindings import BindingTable
from repro.core.distributed import machine_result_rows
from repro.core.join import CooperativeJoinBudget
from repro.core.matcher import match_stwig
from repro.core.planner import QueryPlan
from repro.core.result import MatchTable
from repro.core.stwig import STwig
from repro.graph.labeled_graph import NODE_DTYPE
from repro.query.query_graph import QueryGraph
from repro.runtime.shared_cloud import (
    BindingsHandle,
    CloudHandle,
    attached_bindings,
    attached_tables,
    publish_bindings,
    publish_cloud,
    publish_tables,
    rebuild_cloud,
)
from repro.utils.shm import SharedArraySpec, attach_array, publish_array

#: Result arrays at or above this entry count return to the driver through a
#: one-shot shared-memory block instead of the pool's pickle pipe (two
#: memcpys instead of serialize -> pipe -> deserialize).  256 KiB of int64.
_SHIP_THRESHOLD_ENTRIES = 32_768


def _ship_array(array: np.ndarray):
    """Worker-side: large result arrays go back via shared memory."""
    if array.size < _SHIP_THRESHOLD_ENTRIES:
        return array
    segment, spec = publish_array(array)
    # Drop the worker's mapping; the block lives until the driver unlinks.
    segment.close()
    return spec


def _receive_array(shipped) -> np.ndarray:
    """Driver-side: materialize a shipped array and retire its block."""
    if not isinstance(shipped, SharedArraySpec):
        return shipped
    segment, view = attach_array(shipped)
    try:
        return view.copy()
    finally:
        segment.close()
        segment.unlink()


def _ship_bindings(bindings, query):
    """Driver-side: large binding tables go to workers via shared memory.

    Returns ``(payload, registry)``: small (or absent) bindings pass
    through as the pickled object with no registry; large ones are
    published once and replaced by a :class:`BindingsHandle`, so the pool
    pipe never carries the same multi-megabyte arrays once per machine.
    The caller closes the registry after the fan-out completes.
    """
    if bindings is None:
        return None, None
    total = sum(
        len(array)
        for node in query.nodes()
        if (array := bindings.candidates_array(node)) is not None
    )
    if total < _SHIP_THRESHOLD_ENTRIES:
        return bindings, None
    handle, registry = publish_bindings(bindings, query)
    return handle, registry


@contextmanager
def _resolved_bindings(payload, query):
    """Worker-side counterpart of :func:`_ship_bindings`."""
    if isinstance(payload, BindingsHandle):
        with attached_bindings(payload, query) as bindings:
            yield bindings
    else:
        yield payload


def _discard_shipped(shipped) -> None:
    """Driver-side: retire a shipped block without materializing it."""
    if isinstance(shipped, SharedArraySpec):
        try:
            segment, _ = attach_array(shipped)
        except FileNotFoundError:  # pragma: no cover - already retired
            return
        segment.close()
        segment.unlink()


def _collect_shipped(outcomes):
    """Unwrap guarded worker outcomes, leaking no shipped block on error.

    Workers return ``("ok", (shipped, metrics))`` or ``("error", exc)`` —
    they never raise through the pool, because ``Pool.map`` discards the
    sibling results of a failed map and any shared-memory blocks those
    siblings shipped would stay linked forever.  On failure every
    successfully shipped block is unlinked before the first error is
    re-raised.
    """
    errors = [payload for status, payload in outcomes if status == "error"]
    if errors:
        for status, payload in outcomes:
            if status == "ok":
                _discard_shipped(payload[0])
        raise errors[0]
    return [
        (_receive_array(shipped), metrics) for _, (shipped, metrics) in outcomes
    ]


class Executor(ABC):
    """Runs the engine's per-machine fan-outs and merges their metrics."""

    name: str = "abstract"

    @abstractmethod
    def map_explore(
        self,
        cloud: MemoryCloud,
        stwig: STwig,
        query: QueryGraph,
        bindings: Optional[BindingTable],
        stage_roots: Sequence[np.ndarray],
    ) -> List[MatchTable]:
        """Run one exploration stage's ``match_stwig`` on every machine.

        Returns the per-machine tables in machine-ID order and merges each
        task's isolated metrics into ``cloud.metrics`` in the same order.
        """

    @abstractmethod
    def map_join(
        self,
        cloud: MemoryCloud,
        plan: QueryPlan,
        tables,
        bindings,
        row_limit: Optional[int] = None,
    ) -> List[np.ndarray]:
        """Run the gather+join of every machine, returning its result rows.

        Per-machine row blocks come back in machine-ID order (the serial
        concatenation order), already normalized to the query's sorted
        column order.  ``row_limit`` is a *shared* budget: every machine
        joins against its machine-ordered :class:`CooperativeJoinBudget`
        view of one slot array, so machines stop as soon as lower IDs have
        produced enough rows and the driver's ordered concatenation stays
        an exact prefix of the unlimited result on every backend.
        """

    def close(self) -> None:
        """Release pools and shared-memory publications (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _merge_ordered(cloud: MemoryCloud, outcomes: Sequence[Tuple[object, CloudMetrics]]):
    """Fold per-task metrics into the cloud in task order; return results."""
    results = []
    for result, metrics in outcomes:
        cloud.metrics.merge(metrics)
        results.append(result)
    return results


def _pool_size(requested: Optional[int], machine_count: int) -> int:
    """Default pool sizing: one worker per machine, capped at the host CPUs."""
    if requested is not None:
        return max(1, requested)
    return max(1, min(machine_count, os.cpu_count() or 1))


class SerialExecutor(Executor):
    """Inline execution in machine order — today's behavior, the oracle."""

    name = "serial"

    def map_explore(self, cloud, stwig, query, bindings, stage_roots):
        outcomes = []
        for machine_id in range(cloud.machine_count):
            metrics = CloudMetrics()
            table = match_stwig(
                cloud.with_metrics(metrics),
                machine_id,
                stwig,
                query,
                bindings=bindings,
                roots=stage_roots[machine_id],
            )
            outcomes.append((table, metrics))
        return _merge_ordered(cloud, outcomes)

    def map_join(self, cloud, plan, tables, bindings, row_limit=None):
        # Sequential tasks share one filtered-table cache, exactly like the
        # historical single-loop assembly; the cooperative budget views,
        # consumed in machine order, telescope to the historical remaining
        # countdown (including the skip-everything early exit).
        slots = [0] * cloud.machine_count
        filtered_cache: dict = {}
        outcomes = []
        for machine_id in range(cloud.machine_count):
            metrics = CloudMetrics()
            rows = machine_result_rows(
                cloud.with_metrics(metrics),
                plan,
                tables,
                machine_id,
                bindings,
                budget=CooperativeJoinBudget(slots, machine_id, row_limit),
                filtered_cache=filtered_cache,
            )
            outcomes.append((rows, metrics))
        return _merge_ordered(cloud, outcomes)


class ThreadExecutor(Executor):
    """Thread-pool execution over the shared in-process partition store."""

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_workers = 0
        self._lock = threading.Lock()

    def _ensure_pool(self, machine_count: int) -> ThreadPoolExecutor:
        # Serialized: the query service submits fan-outs from many threads,
        # and two of them must not both decide to (re)build the pool.
        with self._lock:
            wanted = _pool_size(self._max_workers, machine_count)
            if self._pool is not None and wanted > self._pool_workers:
                # A later cloud has more machines than the pool was sized for
                # (shared executors outlive their first cloud): resize up.
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=wanted, thread_name_prefix="repro-runtime"
                )
                self._pool_workers = wanted
            return self._pool

    def map_explore(self, cloud, stwig, query, bindings, stage_roots):
        pool = self._ensure_pool(cloud.machine_count)
        # Safety barrier: complete any staged-store lazy merges before the
        # machines are read from several threads (the merge reassigns the
        # CSR arrays non-atomically).
        cloud.flush_staged()

        def task(machine_id: int):
            metrics = CloudMetrics()
            table = match_stwig(
                cloud.with_metrics(metrics),
                machine_id,
                stwig,
                query,
                bindings=bindings,
                roots=stage_roots[machine_id],
            )
            return table, metrics

        outcomes = list(pool.map(task, range(cloud.machine_count)))
        return _merge_ordered(cloud, outcomes)

    def map_join(self, cloud, plan, tables, bindings, row_limit=None):
        pool = self._ensure_pool(cloud.machine_count)
        # Threads share the filtered-table cache: values are immutable
        # tables keyed by (machine, STwig), so the worst race is a
        # duplicated computation, never a wrong entry — and the counters
        # never depend on cache hits.
        filtered_cache: dict = {}
        # One produced-count slot per machine, single writer each; list
        # item reads/writes are atomic under the GIL, and a stale read of
        # another machine's slot only under-counts (the final truncate in
        # assemble_results restores the exact limit).
        slots = [0] * cloud.machine_count

        def task(machine_id: int):
            metrics = CloudMetrics()
            rows = machine_result_rows(
                cloud.with_metrics(metrics),
                plan,
                tables,
                machine_id,
                bindings,
                budget=CooperativeJoinBudget(slots, machine_id, row_limit),
                filtered_cache=filtered_cache,
            )
            return rows, metrics

        outcomes = list(pool.map(task, range(cloud.machine_count)))
        return _merge_ordered(cloud, outcomes)

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


# -- process backend ---------------------------------------------------------

#: Worker-process state: the cloud handle arrives via the pool initializer
#: and the cloud itself is rebuilt lazily on the first task, so workers that
#: never run a task never map the segments.
_WORKER_CONTEXT: dict = {"handle": None, "cloud": None}


def _worker_initialize(handle: CloudHandle) -> None:
    _WORKER_CONTEXT["handle"] = handle
    _WORKER_CONTEXT["cloud"] = None


def _worker_cloud() -> MemoryCloud:
    cloud = _WORKER_CONTEXT["cloud"]
    if cloud is None:
        cloud = rebuild_cloud(_WORKER_CONTEXT["handle"])
        _WORKER_CONTEXT["cloud"] = cloud
    return cloud


def _worker_explore(payload):
    try:
        machine_id, stwig, query, shipped_bindings, roots = payload
        metrics = CloudMetrics()
        with _resolved_bindings(shipped_bindings, query) as bindings:
            table = match_stwig(
                _worker_cloud().with_metrics(metrics),
                machine_id,
                stwig,
                query,
                bindings=bindings,
                roots=roots,
            )
        return "ok", (_ship_array(table.to_array()), metrics)
    except Exception as error:  # noqa: BLE001 - transported to the driver
        return "error", error


def _worker_join(payload):
    try:
        machine_id, plan, tables_handle, shipped_bindings, budget = payload
        metrics = CloudMetrics()
        scoped = _worker_cloud().with_metrics(metrics)
        try:
            with _resolved_bindings(shipped_bindings, plan.query) as bindings:
                with attached_tables(tables_handle, plan) as tables:
                    rows = machine_result_rows(
                        scoped, plan, tables, machine_id, bindings, budget=budget
                    )
                    # The attachments close on exit; detach the result from
                    # the shared pages before they do.
                    rows = np.array(rows, dtype=NODE_DTYPE, copy=True)
        finally:
            if budget is not None:
                # Drop this task's mapping of the budget-slot segment; the
                # driver unlinks the block after the whole fan-out returns.
                budget.release()
        return "ok", (_ship_array(rows), metrics)
    except Exception as error:  # noqa: BLE001 - transported to the driver
        return "error", error


class _SharedBudgetSlots:
    """Picklable, lazily attached int64 slot array for cooperative budgets.

    ``multiprocessing.Value``/``Array`` only share by inheritance and
    cannot ride through ``Pool.map`` payloads, so the slots live in a tiny
    shared-memory block instead: the driver publishes zeros, each worker
    task attaches writable on first use and closes its mapping when the
    task ends, and the driver unlinks the block after the fan-out.
    Aligned 8-byte loads/stores are atomic on every platform numpy
    supports, and each slot has exactly one writer, so stale reads of
    *other* slots only under-count — always the safe direction.
    """

    def __init__(self, spec: SharedArraySpec) -> None:
        self._spec = spec
        self._segment = None
        self._view = None

    def _ensure(self) -> np.ndarray:
        if self._view is None:
            self._segment, self._view = attach_array(self._spec, writable=True)
        return self._view

    def __getitem__(self, index: int) -> int:
        return int(self._ensure()[index])

    def __setitem__(self, index: int, value: int) -> None:
        self._ensure()[index] = value

    def close(self) -> None:
        segment, self._segment, self._view = self._segment, None, None
        if segment is not None:
            segment.close()

    def __getstate__(self):
        return {"spec": self._spec}

    def __setstate__(self, state) -> None:
        self._spec = state["spec"]
        self._segment = None
        self._view = None


class _ProcessState:
    """Pool + publication owned by one :class:`ProcessExecutor`.

    Kept outside the executor so a ``weakref.finalize`` can tear it down
    without keeping the executor alive: dropping the last reference to an
    unclosed executor (or interpreter exit) still terminates the workers
    and unlinks every published segment.
    """

    def __init__(self) -> None:
        self.pool = None
        self.registry = None
        self.cloud_ref = lambda: None
        self.load_generation = -1

    def teardown(self) -> None:
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        registry, self.registry = self.registry, None
        if registry is not None:
            registry.close()
        self.cloud_ref = lambda: None


class ProcessExecutor(Executor):
    """Process-pool execution over shared-memory CSR partition views."""

    name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self._max_workers = max_workers
        self._start_method = start_method
        self._state = _ProcessState()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._finalizer = weakref.finalize(self, _ProcessState.teardown, self._state)

    @contextmanager
    def _inflight_map(self):
        """Track an in-flight fan-out so close() drains before teardown.

        ``Pool.terminate()`` under an outstanding ``Pool.map`` leaves the
        mapping thread blocked forever (its result never arrives), so a
        concurrent close must wait for in-flight fan-outs to complete
        before tearing the pool down.
        """
        with self._idle:
            self._inflight += 1
        try:
            yield
        finally:
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    def _ensure_pool(self, cloud: MemoryCloud):
        # Key the publication on the *owning* cloud, never on the per-query
        # metrics view the engine hands the fan-outs: one resident cloud is
        # published once, no matter how many concurrent queries it serves.
        owner = cloud.runtime_owner
        state = self._state
        # Serialized: concurrent queries from the service must not race the
        # publish/pool construction (or double-publish the graph).
        with self._lock:
            if state.pool is not None:
                if (
                    state.cloud_ref() is owner
                    and state.load_generation == owner.load_generation
                ):
                    return state.pool
                # A different cloud — or the same cloud reloaded with a new
                # graph: republish and restart the workers (their cached
                # rebuild views the old segments).  A previous *other* cloud
                # must forget this executor, or closing it later would tear
                # down the new cloud's live pool and segments.
                previous = state.cloud_ref()
                state.teardown()
                if previous is not None and previous is not owner:
                    previous.deregister_runtime_resource(self)
            handle, registry = publish_cloud(owner)
            state.registry = registry
            state.cloud_ref = weakref.ref(owner)
            state.load_generation = owner.load_generation
            context = multiprocessing.get_context(self._start_method)
            state.pool = context.Pool(
                processes=_pool_size(self._max_workers, owner.machine_count),
                initializer=_worker_initialize,
                initargs=(handle,),
            )
            # The cloud tears this executor down (pool + segment unlink) on
            # close(), which is what the shared-memory leak check exercises.
            owner.register_runtime_resource(self)
            return state.pool

    def map_explore(self, cloud, stwig, query, bindings, stage_roots):
        with self._inflight_map():
            pool = self._ensure_pool(cloud)
            shipped_bindings, bindings_registry = _ship_bindings(bindings, query)
            try:
                payloads = [
                    (machine_id, stwig, query, shipped_bindings, stage_roots[machine_id])
                    for machine_id in range(cloud.machine_count)
                ]
                received = _collect_shipped(
                    pool.map(_worker_explore, payloads, chunksize=1)
                )
            finally:
                if bindings_registry is not None:
                    bindings_registry.close()
        outcomes = [
            (MatchTable.from_array(stwig.nodes, array), metrics)
            for array, metrics in received
        ]
        return _merge_ordered(cloud, outcomes)

    def map_join(self, cloud, plan, tables, bindings, row_limit=None):
        with self._inflight_map():
            pool = self._ensure_pool(cloud)
            handle, registry = publish_tables(tables)
            shipped_bindings, bindings_registry = _ship_bindings(bindings, plan.query)
            budget_segment = None
            budgets: List = [None] * cloud.machine_count
            if row_limit is not None:
                budget_segment, spec = publish_array(
                    np.zeros(cloud.machine_count, dtype=np.int64)
                )
                slots = _SharedBudgetSlots(spec)
                budgets = [
                    CooperativeJoinBudget(slots, machine_id, row_limit)
                    for machine_id in range(cloud.machine_count)
                ]
            try:
                payloads = [
                    (machine_id, plan, handle, shipped_bindings, budgets[machine_id])
                    for machine_id in range(cloud.machine_count)
                ]
                outcomes = _collect_shipped(
                    pool.map(_worker_join, payloads, chunksize=1)
                )
            finally:
                registry.close()
                if bindings_registry is not None:
                    bindings_registry.close()
                if budget_segment is not None:
                    budget_segment.close()
                    try:
                        budget_segment.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
        return _merge_ordered(cloud, outcomes)

    def published_segment_names(self) -> List[str]:
        """Names of the live graph segments (empty after close)."""
        if self._state.registry is None:
            return []
        return self._state.registry.segment_names()

    def close(self) -> None:
        # Tear down directly (idempotent) rather than through the one-shot
        # finalizer: an executor reused after close() rebuilds its pool and
        # publication, and those must be closeable again.  The finalizer
        # stays armed as the GC/interpreter-exit backstop.  The lock orders
        # close() against a concurrent _ensure_pool, and the in-flight drain
        # orders it against concurrent fan-outs, so matcher.close() and
        # MemoryCloud.close() can run in any order (or twice) safely even
        # while queries are executing.
        with self._idle:
            while self._inflight:
                self._idle.wait()
            self._state.teardown()


#: Backend name -> executor class.
_EXECUTORS = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}

ExecutorSpec = Union[None, str, RuntimeConfig, Executor]


def create_executor(spec: ExecutorSpec = None) -> Executor:
    """Build an executor from a backend name, a RuntimeConfig, or nothing.

    ``None`` resolves the backend from the ``REPRO_EXECUTOR`` environment
    variable (default ``serial``); an existing :class:`Executor` instance
    passes through unchanged.
    """
    if isinstance(spec, Executor):
        return spec
    if isinstance(spec, RuntimeConfig):
        spec.validate()
        backend = spec.resolved_backend()
        if backend == "thread":
            return ThreadExecutor(max_workers=spec.max_workers)
        if backend == "process":
            return ProcessExecutor(
                max_workers=spec.max_workers, start_method=spec.start_method
            )
        return SerialExecutor()
    backend = resolve_backend(spec)
    return _EXECUTORS[backend]()


def normalize_executor_spec(
    executor: ExecutorSpec = None, workers: "int | None" = None
) -> ExecutorSpec:
    """Fold the public ``executor=``/``workers=`` kwarg pair into one spec.

    This is the normalization behind every entry point that accepts the
    pair (``SubgraphMatcher``, ``QueryService``, ``repro.api.connect``, the
    CLI's ``--executor``/``--workers``): ``workers`` bounds the pool of a
    thread/process backend and is meaningless for an already-built
    :class:`Executor` (whose pool size is fixed) — passing both raises.

    Raises:
        ConfigurationError: ``workers`` with an :class:`Executor` instance,
            or a non-positive ``workers``.
    """
    if workers is None:
        return executor
    from repro.errors import ConfigurationError

    if isinstance(executor, Executor):
        raise ConfigurationError(
            "workers= cannot resize an existing Executor instance; "
            "pass a backend name or RuntimeConfig instead"
        )
    if workers <= 0:
        raise ConfigurationError(f"workers must be positive, got {workers}")
    if isinstance(executor, RuntimeConfig):
        return RuntimeConfig(
            backend=executor.backend,
            max_workers=workers,
            start_method=executor.start_method,
        )
    return RuntimeConfig(backend=executor, max_workers=workers)
