"""Pluggable executors behind the uniform ``Executor.run`` task interface.

The paper's query engine is distributed: every machine matches STwigs over
its partition *concurrently*, and every machine assembles its share of the
answer concurrently.  The reproduction models that cluster with one
process; the engine describes each fan-out as a batch of tasks
(:class:`~repro.core.tasks.ExploreTask` / :class:`~repro.core.tasks.JoinTask`)
and an executor schedules them:

* :class:`SerialExecutor` — runs tasks inline, in machine order.  This is
  the parity oracle: the other backends must produce row-for-row identical
  results **and** identical communication counters.
* :class:`ThreadExecutor` — a thread pool over the shared in-process store.
  Numpy kernels release the GIL, so batched matching overlaps.
* :class:`ProcessExecutor` — a process pool over shared-memory CSR
  partitions (see :mod:`repro.runtime.shared_cloud`).  The graph is
  published once; workers rebuild zero-copy views lazily.  Exploration
  result tables stay in shared memory *end to end*: workers publish their
  columns once and return only :class:`~repro.core.tasks.TableHandle`\\ s,
  and the join tasks attach those same pages — the driver never receives,
  re-pickles, or re-publishes an intermediate table (the
  ``transport_counters`` make that claim observable).

Work stealing: the thread and process backends split each exploration
task's root array into bounded chunks queued individually, so idle workers
steal from skewed machines.  Chunked sub-results concatenate in chunk
order to exactly the unchunked table (``match_stwig`` emits rows in root
order and charges per root/neighbor), and join tasks are never split, so
the cooperative budget's exact-prefix guarantee survives any schedule.

Metric faithfulness is structural: every task chunk runs against a
metrics-scoped view of the cloud (:meth:`MemoryCloud.with_metrics`), and
the isolated counters are merged back in (task, chunk) order after the
batch completes.  Counter totals are sums, so any schedule aggregates to
exactly the serial model's metrics — the invariant the parity suite
asserts.  ``run`` reports each task's result through an optional
``on_result`` callback *as it completes* (always from the calling thread),
which is what lets the proxy-side binding merge overlap with the stage
barrier instead of waiting for the slowest machine.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import threading
import weakref
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor, as_completed, wait
from contextlib import ExitStack, contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import RuntimeConfig, resolve_backend
from repro.cloud.metrics import CloudMetrics
from repro.core.distributed import machine_result_rows
from repro.core.join import CooperativeJoinBudget
from repro.core.matcher import match_stwig
from repro.core.tasks import (
    ExploreResult,
    ExploreTask,
    JoinResult,
    JoinTask,
    TableHandle,
    attached_matrix,
    explore_result,
    matrix_is_published,
)
from repro.errors import ExecutionError
from repro.graph.labeled_graph import NODE_DTYPE
from repro.query.query_graph import QueryGraph
from repro.runtime.shared_cloud import (
    BindingsHandle,
    CloudHandle,
    attached_bindings,
    publish_bindings,
    publish_cloud,
    rebuild_cloud,
)
from repro.utils.deprecation import shim_renamed_kwarg as _shim_deprecated
from repro.utils.shm import (
    SharedArraySpec,
    attach_array,
    publish_array,
    unlink_block,
)

#: Arrays at or above this entry count travel between processes through a
#: one-shot shared-memory block instead of the pool's pickle pipe (two
#: memcpys instead of serialize -> pipe -> deserialize).  256 KiB of int64.
#: Exploration tables this large are *published* worker-side and never
#: travel at all — only their handles do.
_SHIP_THRESHOLD_ENTRIES = 32_768

#: Work stealing: a machine's stage roots are split into at most
#: ``_STEAL_MAX_CHUNKS`` chunks of at least ``_STEAL_MIN_ROOTS`` roots each
#: (machines below twice the minimum stay unsplit — there is nothing worth
#: stealing).  Bounded chunking caps the coalesce cost on the driver while
#: still letting idle workers take work from skewed machines.
_STEAL_MIN_ROOTS = 4_096
_STEAL_MAX_CHUNKS = 4


def _root_chunks(roots: np.ndarray, stealing: bool) -> List[np.ndarray]:
    """Split one machine's stage roots into bounded stealable chunks."""
    count = len(roots)
    if not stealing or count < 2 * _STEAL_MIN_ROOTS:
        return [roots]
    return np.array_split(roots, min(_STEAL_MAX_CHUNKS, count // _STEAL_MIN_ROOTS))


def _shared_join_limit(tasks: Sequence[object]) -> Optional[int]:
    """The single row limit shared by every join task of one batch."""
    limits = {task.row_limit for task in tasks if isinstance(task, JoinTask)}
    if not limits:
        return None
    if len(limits) > 1:
        raise ExecutionError(
            "join tasks submitted in one Executor.run batch must share one "
            f"row_limit, got {limits}"
        )
    return limits.pop()


def _ship_array(array: np.ndarray):
    """Worker-side: large result arrays go back via shared memory."""
    if array.size < _SHIP_THRESHOLD_ENTRIES:
        return array
    segment, spec = publish_array(array)
    # Drop the worker's mapping; the block lives until the driver unlinks.
    segment.close()
    return spec


def _receive_array(shipped) -> np.ndarray:
    """Driver-side: materialize a shipped array and retire its block."""
    if not isinstance(shipped, SharedArraySpec):
        return shipped
    segment, view = attach_array(shipped)
    try:
        return view.copy()
    finally:
        segment.close()
        segment.unlink()


def _discard_shipped(shipped) -> None:
    """Driver-side: retire a shipped block without materializing it."""
    if isinstance(shipped, SharedArraySpec):
        unlink_block(shipped)


def _ship_bindings(bindings, query: QueryGraph):
    """Driver-side: large binding tables go to workers via shared memory.

    Returns ``(payload, registry)``: small (or absent) bindings pass
    through as the pickled object with no registry; large ones are
    published once and replaced by a :class:`BindingsHandle`, so the pool
    pipe never carries the same multi-megabyte arrays once per machine.
    The caller closes the registry after the fan-out completes.
    """
    if bindings is None:
        return None, None
    total = sum(
        len(array)
        for node in query.nodes()
        if (array := bindings.candidates_array(node)) is not None
    )
    if total < _SHIP_THRESHOLD_ENTRIES:
        return bindings, None
    handle, registry = publish_bindings(bindings, query)
    return handle, registry


@contextmanager
def _resolved_bindings(payload, query: QueryGraph):
    """Worker-side counterpart of :func:`_ship_bindings`."""
    if isinstance(payload, BindingsHandle):
        with attached_bindings(payload, query) as bindings:
            yield bindings
    else:
        yield payload


class Executor(ABC):
    """Schedules the engine's task batches and merges their metrics."""

    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        cloud: MemoryCloud,
        tasks: Sequence[object],
        on_result: Optional[Callable[[int, object], None]] = None,
    ) -> List[object]:
        """Run a batch of tasks, returning one result per task in task order.

        Tasks are :class:`~repro.core.tasks.ExploreTask` (result:
        :class:`~repro.core.tasks.ExploreResult`) or
        :class:`~repro.core.tasks.JoinTask` (result:
        :class:`~repro.core.tasks.JoinResult`).  ``on_result(index,
        result)`` is invoked exactly once per task, from the calling
        thread, as soon as that task's result is complete — possibly out
        of task order — so the caller can overlap per-task post-processing
        (the proxy's binding merge) with the remaining tasks.

        All join tasks of one batch share a single cooperative row budget:
        every machine joins against its machine-ordered
        :class:`~repro.core.join.CooperativeJoinBudget` view of one slot
        array, so machines stop as soon as lower IDs have produced enough
        rows and the driver's ordered concatenation stays an exact prefix
        of the unlimited result on every backend.

        Each task chunk's isolated :class:`CloudMetrics` are merged into
        ``cloud.metrics`` in (task, chunk) order after the batch; totals
        are sums, so every schedule reproduces the serial counters.
        """

    def close(self) -> None:
        """Release pools and shared-memory publications (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _pool_size(requested: Optional[int], machine_count: int) -> int:
    """Default pool sizing: one worker per machine, capped at the host CPUs."""
    if requested is not None:
        return max(1, requested)
    return max(1, min(machine_count, os.cpu_count() or 1))


class _AttachedJoinTables:
    """Driver-side shared state for the join tasks of one ``run`` batch.

    Attaches each distinct handle matrix once (all tasks of a batch share
    the exploration matrix), keeps one binding-filtered-table cache per
    matrix, and owns the budget slot array.  Thread-safe: the thread
    backend calls :meth:`tables_for` concurrently.
    """

    def __init__(self, cloud: MemoryCloud, tasks: Sequence[object]) -> None:
        self._lock = threading.Lock()
        self._stack = ExitStack()
        self._entries: Dict[int, tuple] = {}
        self.limit = _shared_join_limit(tasks)
        # One produced-count slot per machine, single writer each; list
        # item reads/writes are atomic under the GIL, and a stale read of
        # another machine's slot only under-counts (the final truncate in
        # assemble_results restores the exact limit).
        self.slots = [0] * cloud.machine_count if self.limit is not None else None

    def tables_for(self, task: JoinTask):
        """``(tables, any_published, filtered_cache)`` for one task's matrix."""
        key = id(task.tables)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                tables = self._stack.enter_context(attached_matrix(task.tables))
                entry = (tables, matrix_is_published(task.tables), {})
                self._entries[key] = entry
        return entry

    def budget_for(self, machine_id: int) -> Optional[CooperativeJoinBudget]:
        if self.limit is None:
            return None
        return CooperativeJoinBudget(self.slots, machine_id, self.limit)

    def close(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stack.close()


def _join_inline(cloud, shared: _AttachedJoinTables, task: JoinTask) -> JoinResult:
    """Run one join task in-process against the batch's shared attachments."""
    tables, published, filtered_cache = shared.tables_for(task)
    rows = machine_result_rows(
        cloud,
        task.plan,
        tables,
        task.machine_id,
        task.bindings,
        budget=shared.budget_for(task.machine_id),
        filtered_cache=filtered_cache,
    )
    if published and len(rows):
        # The attachments close when the batch ends; detach the result rows
        # from the shared pages before they do.
        rows = np.array(rows, dtype=NODE_DTYPE, copy=True)
    return JoinResult(task.machine_id, rows)


def _explore_chunk_inline(cloud: MemoryCloud, task: ExploreTask, chunk: np.ndarray):
    metrics = CloudMetrics()
    table = match_stwig(
        cloud.with_metrics(metrics),
        task.machine_id,
        task.stwig,
        task.query,
        bindings=task.bindings,
        roots=chunk,
    )
    return table, metrics


def _join_unit_inline(cloud: MemoryCloud, shared: _AttachedJoinTables, task: JoinTask):
    metrics = CloudMetrics()
    return _join_inline(cloud.with_metrics(metrics), shared, task), metrics


def _assemble_inline(task: object, entries: Sequence[tuple]) -> object:
    """Combine one task's chunk payloads (in-process backends)."""
    if isinstance(task, JoinTask):
        return entries[0][0]
    tables = [table for table, _ in entries]
    if len(tables) == 1:
        return explore_result(task, tables[0])
    merged = np.concatenate([table.to_array() for table in tables], axis=0)
    from repro.core.result import MatchTable

    return explore_result(task, MatchTable.from_array(task.stwig.nodes, merged))


class SerialExecutor(Executor):
    """Inline execution in task (= machine) order — the parity oracle.

    Sequential join tasks share one filtered-table cache, exactly like the
    historical single-loop assembly; the cooperative budget views, consumed
    in machine order, telescope to the historical remaining countdown
    (including the skip-everything early exit).
    """

    name = "serial"

    def run(self, cloud, tasks, on_result=None):
        results: List[object] = [None] * len(tasks)
        shared = _AttachedJoinTables(cloud, tasks)
        try:
            for index, task in enumerate(tasks):
                metrics = CloudMetrics()
                scoped = cloud.with_metrics(metrics)
                if isinstance(task, ExploreTask):
                    table = match_stwig(
                        scoped,
                        task.machine_id,
                        task.stwig,
                        task.query,
                        bindings=task.bindings,
                        roots=task.roots,
                    )
                    result = explore_result(task, table)
                elif isinstance(task, JoinTask):
                    result = _join_inline(scoped, shared, task)
                else:
                    raise ExecutionError(f"unknown task type {type(task).__name__}")
                cloud.metrics.merge(metrics)
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
        finally:
            shared.close()
        return results


class ThreadExecutor(Executor):
    """Thread-pool execution over the shared in-process partition store."""

    name = "thread"

    def __init__(
        self,
        workers: Optional[int] = None,
        stealing: bool = True,
        **deprecated,
    ) -> None:
        workers = _shim_deprecated(
            deprecated, "max_workers", "workers", workers, ThreadExecutor
        )
        if deprecated:
            raise TypeError(
                f"unexpected keyword arguments {sorted(deprecated)} "
                "for ThreadExecutor"
            )
        self._workers = workers
        self._stealing = stealing
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_workers = 0
        self._lock = threading.Lock()

    def _ensure_pool(self, machine_count: int) -> ThreadPoolExecutor:
        # Serialized: the query service submits fan-outs from many threads,
        # and two of them must not both decide to (re)build the pool.
        with self._lock:
            wanted = _pool_size(self._workers, machine_count)
            if self._pool is not None and wanted > self._pool_workers:
                # A later cloud has more machines than the pool was sized for
                # (shared executors outlive their first cloud): resize up.
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._pool is None:
                self._pool = ThreadPoolExecutor(wanted, thread_name_prefix="repro-runtime")
                self._pool_workers = wanted
            return self._pool

    def run(self, cloud, tasks, on_result=None):
        if not tasks:
            return []
        pool = self._ensure_pool(cloud.machine_count)
        if any(isinstance(task, ExploreTask) for task in tasks):
            # Safety barrier: complete any staged-store lazy merges before
            # the machines are read from several threads (the merge
            # reassigns the CSR arrays non-atomically).
            cloud.flush_staged()
        shared = _AttachedJoinTables(cloud, tasks)
        chunk_counts = [1] * len(tasks)
        units = []
        for index, task in enumerate(tasks):
            if isinstance(task, ExploreTask):
                chunks = _root_chunks(task.roots, self._stealing)
                chunk_counts[index] = len(chunks)
                for chunk_index, chunk in enumerate(chunks):
                    units.append(
                        (
                            index,
                            chunk_index,
                            functools.partial(_explore_chunk_inline, cloud, task, chunk),
                        )
                    )
            elif isinstance(task, JoinTask):
                units.append(
                    (index, 0, functools.partial(_join_unit_inline, cloud, shared, task))
                )
            else:
                raise ExecutionError(f"unknown task type {type(task).__name__}")
        buffers: List[List] = [[None] * count for count in chunk_counts]
        pending = list(chunk_counts)
        results: List[object] = [None] * len(tasks)
        futures: Dict = {}
        try:
            futures = {
                pool.submit(thunk): (task_index, chunk_index)
                for task_index, chunk_index, thunk in units
            }
            for future in as_completed(futures):
                task_index, chunk_index = futures[future]
                buffers[task_index][chunk_index] = future.result()
                pending[task_index] -= 1
                if pending[task_index] == 0:
                    results[task_index] = _assemble_inline(
                        tasks[task_index], buffers[task_index]
                    )
                    if on_result is not None:
                        on_result(task_index, results[task_index])
        finally:
            # On error the attachments must outlive still-running units.
            wait(list(futures))
            shared.close()
        for chunk_list in buffers:
            for entry in chunk_list:
                if entry is not None:
                    cloud.metrics.merge(entry[1])
        return results

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


# -- process backend ---------------------------------------------------------

#: Worker-process state: the cloud handle arrives via the pool initializer
#: and the cloud itself is rebuilt lazily on the first task, so workers that
#: never run a task never map the segments.
_WORKER_CONTEXT: dict = {"handle": None, "cloud": None}


def _worker_initialize(handle: CloudHandle) -> None:
    _WORKER_CONTEXT["handle"] = handle
    _WORKER_CONTEXT["cloud"] = None


def _worker_cloud() -> MemoryCloud:
    cloud = _WORKER_CONTEXT["cloud"]
    if cloud is None:
        cloud = rebuild_cloud(_WORKER_CONTEXT["handle"])
        _WORKER_CONTEXT["cloud"] = cloud
    return cloud


def _worker_explore(args):
    machine_id, stwig, query, shipped_bindings, roots = args
    metrics = CloudMetrics()
    with _resolved_bindings(shipped_bindings, query) as bindings:
        table = match_stwig(
            _worker_cloud().with_metrics(metrics),
            machine_id,
            stwig,
            query,
            bindings=bindings,
            roots=roots,
        )
    part = None
    published = 0
    distincts = {}
    if table.row_count:
        array = table.to_array()
        if array.size >= _SHIP_THRESHOLD_ENTRIES:
            # The end-to-end shared-memory path: publish once, return only
            # the spec.  The block lives until a TableHandle.release() (or
            # an executor error path) unlinks it — the driver never maps it.
            segment, spec = publish_array(array)
            segment.close()
            part = spec
            published = 1
        else:
            part = array
        distincts = {
            node: _ship_array(table.column_distinct(node)) for node in stwig.nodes
        }
    return table.row_count, part, distincts, published, metrics


def _worker_join(args):
    machine_id, plan, matrix, shipped_bindings, budget = args
    metrics = CloudMetrics()
    scoped = _worker_cloud().with_metrics(metrics)
    try:
        with _resolved_bindings(shipped_bindings, plan.query) as bindings:
            with attached_matrix(matrix) as tables:
                rows = machine_result_rows(
                    scoped, plan, tables, machine_id, bindings, budget=budget
                )
                # The attachments close on exit; detach the result from
                # the shared pages before they do.
                rows = np.array(rows, dtype=NODE_DTYPE, copy=True)
    finally:
        if budget is not None:
            # Drop this task's mapping of the budget-slot segment; the
            # driver unlinks the block after the whole batch returns.
            budget.release()
    return _ship_array(rows), metrics


def _worker_run(payload):
    """Guarded worker dispatch: errors are transported, never raised.

    A worker that raised through ``imap_unordered`` would abort the whole
    iteration and strand every sibling's shipped shared-memory block; the
    driver instead collects ``("error", ...)`` outcomes, drains the batch,
    unlinks everything the successful siblings shipped, and re-raises.
    """
    unit_index, kind, args = payload
    try:
        if kind == "explore":
            return "ok", unit_index, _worker_explore(args)
        return "ok", unit_index, _worker_join(args)
    except Exception as error:  # noqa: BLE001 - transported to the driver
        return "error", unit_index, error


class _SharedBudgetSlots:
    """Picklable, lazily attached int64 slot array for cooperative budgets.

    ``multiprocessing.Value``/``Array`` only share by inheritance and
    cannot ride through pool payloads, so the slots live in a tiny
    shared-memory block instead: the driver publishes zeros, each worker
    task attaches writable on first use and closes its mapping when the
    task ends, and the driver unlinks the block after the batch.
    Aligned 8-byte loads/stores are atomic on every platform numpy
    supports, and each slot has exactly one writer, so stale reads of
    *other* slots only under-count — always the safe direction.
    """

    def __init__(self, spec: SharedArraySpec) -> None:
        self._spec = spec
        self._segment = None
        self._view = None

    def _ensure(self) -> np.ndarray:
        if self._view is None:
            self._segment, self._view = attach_array(self._spec, writable=True)
        return self._view

    def __getitem__(self, index: int) -> int:
        return int(self._ensure()[index])

    def __setitem__(self, index: int, value: int) -> None:
        self._ensure()[index] = value

    def close(self) -> None:
        segment, self._segment, self._view = self._segment, None, None
        if segment is not None:
            segment.close()

    def __getstate__(self):
        return {"spec": self._spec}

    def __setstate__(self, state) -> None:
        self._spec = state["spec"]
        self._segment = None
        self._view = None


class _ProcessState:
    """Pool + publications owned by one :class:`ProcessExecutor`.

    Kept outside the executor so a ``weakref.finalize`` can tear it down
    without keeping the executor alive: dropping the last reference to an
    unclosed executor (or interpreter exit) still terminates the workers
    and unlinks every published segment.

    ``publications`` is the join-phase publication cache: table
    fingerprint -> shm spec for *inline* handles the executor had to
    publish itself (tables explored by another backend, or one outcome
    joined repeatedly).  The cache makes re-publication a cache hit instead
    of a new segment when the same cloud serves interleaved queries; it is
    implicitly keyed on (runtime owner, load generation) because a cloud
    switch or reload tears this whole state down.
    """

    def __init__(self) -> None:
        self.pool = None
        self.registry = None
        self.cloud_ref = lambda: None
        self.load_generation = -1
        self.publications: Dict[int, SharedArraySpec] = {}

    def teardown(self) -> None:
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        registry, self.registry = self.registry, None
        if registry is not None:
            registry.close()
        publications, self.publications = self.publications, {}
        for spec in publications.values():
            unlink_block(spec)
        self.cloud_ref = lambda: None


class ProcessExecutor(Executor):
    """Process-pool execution over shared-memory CSR partition views.

    ``transport_counters`` exposes the backend's data movement:

    * ``explore_publications`` — tables published worker-side (handles
      returned, bytes stayed in shared memory);
    * ``explore_coalesced`` / ``driver_table_receives`` — chunk-split
      machines whose parts the driver had to reassemble (work stealing
      only; zero when tasks are unsplit);
    * ``join_publications`` / ``join_cache_hits`` — inline tables the join
      dispatch had to publish itself, and re-uses of those publications by
      later batches over the same data.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        stealing: bool = True,
        **deprecated,
    ) -> None:
        workers = _shim_deprecated(
            deprecated, "max_workers", "workers", workers, ProcessExecutor
        )
        if deprecated:
            raise TypeError(
                f"unexpected keyword arguments {sorted(deprecated)} "
                "for ProcessExecutor"
            )
        self._workers = workers
        self._start_method = start_method
        self._stealing = stealing
        self._state = _ProcessState()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self.transport_counters: Dict[str, int] = {
            "explore_publications": 0,
            "explore_coalesced": 0,
            "driver_table_receives": 0,
            "join_publications": 0,
            "join_cache_hits": 0,
        }
        self._finalizer = weakref.finalize(self, _ProcessState.teardown, self._state)

    @contextmanager
    def _inflight_map(self):
        """Track an in-flight batch so close() drains before teardown.

        ``Pool.terminate()`` under an outstanding map leaves the mapping
        thread blocked forever (its result never arrives), so a concurrent
        close must wait for in-flight batches to complete before tearing
        the pool down.
        """
        with self._idle:
            self._inflight += 1
        try:
            yield
        finally:
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    def _ensure_pool(self, cloud: MemoryCloud):
        # Key the publication on the *owning* cloud, never on the per-query
        # metrics view the engine hands the fan-outs: one resident cloud is
        # published once, no matter how many concurrent queries it serves.
        owner = cloud.runtime_owner
        state = self._state
        # Serialized: concurrent queries from the service must not race the
        # publish/pool construction (or double-publish the graph).
        with self._lock:
            if state.pool is not None:
                if (
                    state.cloud_ref() is owner
                    and state.load_generation == owner.load_generation
                ):
                    return state.pool
                # A different cloud — or the same cloud reloaded with a new
                # graph: republish and restart the workers (their cached
                # rebuild views the old segments).  A previous *other* cloud
                # must forget this executor, or closing it later would tear
                # down the new cloud's live pool and segments.
                previous = state.cloud_ref()
                state.teardown()
                if previous is not None and previous is not owner:
                    previous.deregister_runtime_resource(self)
            handle, registry = publish_cloud(owner)
            state.registry = registry
            state.cloud_ref = weakref.ref(owner)
            state.load_generation = owner.load_generation
            context = multiprocessing.get_context(self._start_method)
            state.pool = context.Pool(
                processes=_pool_size(self._workers, owner.machine_count),
                initializer=_worker_initialize,
                initargs=(handle,),
            )
            # The cloud tears this executor down (pool + segment unlink) on
            # close(), which is what the shared-memory leak check exercises.
            owner.register_runtime_resource(self)
            return state.pool

    def _shipped_handle(self, handle: TableHandle) -> TableHandle:
        """The pool-pipe form of one handle: published handles pass through.

        Large *inline* handles are published through the cache (keyed by
        table fingerprint), so one resident table crosses into shared
        memory at most once per cloud generation no matter how many
        interleaved queries join over it; small inline arrays just ride
        the pipe.
        """
        part = handle.part
        if not isinstance(part, np.ndarray) or part.size < _SHIP_THRESHOLD_ENTRIES:
            return handle
        with self._lock:
            spec = self._state.publications.get(handle.fingerprint)
            if spec is None:
                segment, spec = publish_array(part)
                segment.close()
                self._state.publications[handle.fingerprint] = spec
                self.transport_counters["join_publications"] += 1
            else:
                self.transport_counters["join_cache_hits"] += 1
        return TableHandle(handle.columns, handle.row_count, spec, handle.fingerprint)

    def _assemble(self, task: object, bodies: Sequence[tuple]) -> object:
        counters = self.transport_counters
        if isinstance(task, JoinTask):
            shipped_rows, _ = bodies[0]
            return JoinResult(task.machine_id, _receive_array(shipped_rows))
        columns = task.stwig.nodes
        if len(bodies) == 1:
            row_count, part, distincts, published, _ = bodies[0]
            counters["explore_publications"] += published
            received = {
                node: _receive_array(shipped) for node, shipped in distincts.items()
            }
            return ExploreResult(
                task.machine_id, TableHandle(columns, row_count, part), received
            )
        # A chunk-split (stolen-from) machine: coalesce its parts into one
        # inline handle so downstream consumers still see single-part
        # handles.  This is the only driver-side table materialization in
        # the backend, and it is charged to its own counters.
        arrays: List[np.ndarray] = []
        distinct_chunks: Dict[str, List[np.ndarray]] = {}
        for row_count, part, distincts, published, _ in bodies:
            counters["explore_publications"] += published
            if part is not None:
                counters["driver_table_receives"] += 1
                arrays.append(_receive_array(part))
            for node, shipped in distincts.items():
                distinct_chunks.setdefault(node, []).append(_receive_array(shipped))
        counters["explore_coalesced"] += 1
        if arrays:
            handle = TableHandle.from_array(columns, np.concatenate(arrays, axis=0))
        else:
            handle = TableHandle.empty(columns)
        received = {
            node: np.unique(np.concatenate(chunks))
            for node, chunks in distinct_chunks.items()
        }
        return ExploreResult(task.machine_id, handle, received)

    @staticmethod
    def _discard_partial(results: List[object], buffers: List[List]) -> None:
        """Error path: retire every block a failed batch left behind."""
        for result in results:
            if isinstance(result, ExploreResult):
                result.table.release()
        for chunk_list in buffers:
            for body in chunk_list or ():
                if body is None:
                    continue
                if len(body) == 2:  # join body: (shipped_rows, metrics)
                    _discard_shipped(body[0])
                else:  # explore body: (rows, part, distincts, published, metrics)
                    _discard_shipped(body[1])
                    for shipped in body[2].values():
                        _discard_shipped(shipped)

    def run(self, cloud, tasks, on_result=None):
        if not tasks:
            return []
        results: List[object] = [None] * len(tasks)
        unit_metrics: List[List] = []
        with self._inflight_map():
            pool = self._ensure_pool(cloud)
            registries: List = []
            bindings_cache: Dict[int, object] = {}
            matrix_cache: Dict[int, tuple] = {}
            budget_segment = None
            slots = None
            join_limit = _shared_join_limit(tasks)
            if join_limit is not None:
                budget_segment, spec = publish_array(
                    np.zeros(cloud.machine_count, dtype=np.int64)
                )
                slots = _SharedBudgetSlots(spec)

            def shipped_bindings_for(bindings, query):
                if bindings is None:
                    return None
                key = id(bindings)
                if key not in bindings_cache:
                    payload, registry = _ship_bindings(bindings, query)
                    if registry is not None:
                        registries.append(registry)
                    bindings_cache[key] = payload
                return bindings_cache[key]

            def shipped_matrix_for(matrix):
                key = id(matrix)
                if key not in matrix_cache:
                    matrix_cache[key] = tuple(
                        tuple(self._shipped_handle(handle) for handle in machine)
                        for machine in matrix
                    )
                return matrix_cache[key]

            payloads: List[tuple] = []
            meta: List[tuple] = []
            chunk_counts = [1] * len(tasks)
            for index, task in enumerate(tasks):
                if isinstance(task, ExploreTask):
                    shipped = shipped_bindings_for(task.bindings, task.query)
                    chunks = _root_chunks(task.roots, self._stealing)
                    chunk_counts[index] = len(chunks)
                    for chunk_index, chunk in enumerate(chunks):
                        meta.append((index, chunk_index))
                        payloads.append(
                            (
                                len(payloads),
                                "explore",
                                (task.machine_id, task.stwig, task.query, shipped, chunk),
                            )
                        )
                elif isinstance(task, JoinTask):
                    shipped = shipped_bindings_for(task.bindings, task.plan.query)
                    budget = (
                        CooperativeJoinBudget(slots, task.machine_id, join_limit)
                        if join_limit is not None
                        else None
                    )
                    meta.append((index, 0))
                    payloads.append(
                        (
                            len(payloads),
                            "join",
                            (
                                task.machine_id,
                                task.plan,
                                shipped_matrix_for(task.tables),
                                shipped,
                                budget,
                            ),
                        )
                    )
                else:
                    raise ExecutionError(f"unknown task type {type(task).__name__}")

            buffers: List[List] = [[None] * count for count in chunk_counts]
            unit_metrics = [[None] * count for count in chunk_counts]
            pending = list(chunk_counts)
            errors: List[BaseException] = []
            try:
                for status, unit_index, body in pool.imap_unordered(
                    _worker_run, payloads, chunksize=1
                ):
                    task_index, chunk_index = meta[unit_index]
                    if status == "error":
                        errors.append(body)
                        continue
                    unit_metrics[task_index][chunk_index] = body[-1]
                    buffers[task_index][chunk_index] = body
                    pending[task_index] -= 1
                    if pending[task_index] == 0 and not errors:
                        result = self._assemble(tasks[task_index], buffers[task_index])
                        buffers[task_index] = ()
                        results[task_index] = result
                        if on_result is not None:
                            on_result(task_index, result)
                if errors:
                    raise errors[0]
            except BaseException:
                self._discard_partial(results, buffers)
                raise
            finally:
                for registry in registries:
                    registry.close()
                if budget_segment is not None:
                    budget_segment.close()
                    try:
                        budget_segment.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
        for metrics_list in unit_metrics:
            for metrics in metrics_list:
                cloud.metrics.merge(metrics)
        return results

    def published_segment_names(self) -> List[str]:
        """Names of the live graph segments (empty after close)."""
        if self._state.registry is None:
            return []
        return self._state.registry.segment_names()

    def close(self) -> None:
        # Tear down directly (idempotent) rather than through the one-shot
        # finalizer: an executor reused after close() rebuilds its pool and
        # publication, and those must be closeable again.  The finalizer
        # stays armed as the GC/interpreter-exit backstop.  The lock orders
        # close() against a concurrent _ensure_pool, and the in-flight drain
        # orders it against concurrent batches, so matcher.close() and
        # MemoryCloud.close() can run in any order (or twice) safely even
        # while queries are executing.
        with self._idle:
            while self._inflight:
                self._idle.wait()
            self._state.teardown()


#: Backend name -> executor class.
_EXECUTORS = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}

ExecutorSpec = Union[None, str, RuntimeConfig, Executor]


def create_executor(spec: ExecutorSpec = None) -> Executor:
    """Build an executor from a backend name, a RuntimeConfig, or nothing.

    ``None`` resolves the backend from the ``REPRO_EXECUTOR`` environment
    variable (default ``serial``); an existing :class:`Executor` instance
    passes through unchanged.
    """
    if isinstance(spec, Executor):
        return spec
    if isinstance(spec, RuntimeConfig):
        spec.validate()
        backend = spec.resolved_backend()
        if backend == "thread":
            return ThreadExecutor(workers=spec.workers, stealing=spec.stealing)
        if backend == "process":
            return ProcessExecutor(
                workers=spec.workers,
                start_method=spec.start_method,
                stealing=spec.stealing,
            )
        return SerialExecutor()
    backend = resolve_backend(spec)
    return _EXECUTORS[backend]()


def normalize_executor_spec(
    executor: ExecutorSpec = None, workers: "int | None" = None
) -> ExecutorSpec:
    """Fold the public ``executor=``/``workers=`` kwarg pair into one spec.

    This is the normalization behind every entry point that accepts the
    pair (``SubgraphMatcher``, ``QueryService``, ``repro.api.connect``, the
    CLI's ``--executor``/``--workers``): ``workers`` bounds the pool of a
    thread/process backend and is meaningless for an already-built
    :class:`Executor` (whose pool size is fixed) — passing both raises.

    Raises:
        ConfigurationError: ``workers`` with an :class:`Executor` instance,
            or a non-positive ``workers``.
    """
    if workers is None:
        return executor
    from repro.errors import ConfigurationError

    if isinstance(executor, Executor):
        raise ConfigurationError(
            "workers= cannot resize an existing Executor instance; "
            "pass a backend name or RuntimeConfig instead"
        )
    if workers <= 0:
        raise ConfigurationError(f"workers must be positive, got {workers}")
    if isinstance(executor, RuntimeConfig):
        return RuntimeConfig(
            backend=executor.backend,
            workers=workers,
            start_method=executor.start_method,
            stealing=executor.stealing,
        )
    return RuntimeConfig(backend=executor, workers=workers)
