"""Publishing a loaded :class:`MemoryCloud` to worker processes, and back.

The process executor's contract is that the graph is **never pickled per
task**.  Instead:

* :func:`publish_cloud` exposes every machine's CSR columns (sorted node
  IDs, label IDs, offsets, flat neighbor IDs), the cluster-wide label
  arrays, and the partition assignment through a storage provider
  (:mod:`repro.storage`) — by default one copy into ``multiprocessing``
  shared-memory blocks, made once per cloud.  A snapshot-backed cloud
  (:meth:`MemoryCloud.load_snapshot`) skips even that copy: its arrays
  already live in a file, so the handle carries the picklable mmap specs
  as-is and nothing is published;
* :func:`rebuild_cloud` runs inside each worker process and reconstructs a
  fully functional :class:`~repro.cloud.cluster.MemoryCloud` whose arrays
  are zero-copy views over those same pages — shm and mmap specs attach
  through the same :func:`~repro.storage.provider.attach_spec` dispatch
  (via :meth:`MemoryCloud.from_partition_state`).  Dense lookup tables —
  the node->row, node->machine, and node->label acceleration structures —
  are deliberately *not* shipped: each worker derives its own lazily, so
  the caches live in per-process memory while the billion-edge-shaped
  payload stays shared.

Exploration result tables no longer pass through here at all: workers
publish their own ``G_k(q_i)`` relations and hand back
:class:`~repro.core.tasks.TableHandle`\\ s, which the join tasks attach
directly (see :mod:`repro.core.tasks`) — this module only ships what is
genuinely driver-resident: the graph itself and large binding tables.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import ClusterConfig
from repro.core.bindings import BindingTable
from repro.graph.label_table import LabelTable
from repro.graph.partition import PartitionAssignment
from repro.query.query_graph import QueryGraph
from repro.storage.provider import ArraySpec, ShmStorageProvider, attach_spec
from repro.utils.shm import SegmentRegistry, SharedArraySpec, attach_array

#: Per-machine CSR publication: (ids, label_ids, offsets, neighbors).
MachineSpec = Tuple[ArraySpec, ArraySpec, ArraySpec, ArraySpec]


@dataclass(frozen=True)
class CloudHandle:
    """Picklable description of a published cloud (names, shapes, scalars).

    Everything a worker needs to rebuild the cloud: the storage spec of
    every array — shm or mmap, workers attach either — plus the small
    plain-data state (label strings, machine count, graph size).  The
    handle itself is a few hundred bytes — it is shipped once per worker
    via the pool initializer.
    """

    machine_count: int
    labels: Tuple[str, ...]
    node_count: int
    edge_count: int
    machines: Tuple[MachineSpec, ...]
    global_nodes: ArraySpec
    global_labels: ArraySpec
    assignment_ids: ArraySpec
    assignment_machines: ArraySpec


@dataclass(frozen=True)
class BindingsHandle:
    """Published binding table: one spec per *bound* query node.

    The proxy ships each stage's bindings to every machine; for large
    binding sets the process backend publishes the arrays once per stage
    and sends only this handle per task, instead of re-pickling identical
    multi-megabyte arrays ``machine_count`` times through the pool pipe.
    """

    specs: Tuple[Tuple[str, SharedArraySpec], ...]


def publish_cloud(cloud: MemoryCloud) -> Tuple[CloudHandle, SegmentRegistry]:
    """Publish ``cloud``'s partitioned CSR state for worker processes.

    Returns the worker-facing :class:`CloudHandle` and the provider
    (a :class:`~repro.storage.provider.ShmStorageProvider`, i.e. a
    :class:`SegmentRegistry`) owning any published blocks; closing it
    unlinks every segment.  Called once per (executor, cloud) pair.

    A snapshot-backed cloud short-circuits: its arrays already live in a
    snapshot's data file, so the handle ships the recorded mmap specs and
    the returned provider is empty (nothing to unlink — the file outlives
    every process by design).
    """
    registry = ShmStorageProvider()
    specs = cloud.storage_publication
    if specs is not None:
        label_table = cloud.label_table
        handle = CloudHandle(
            machine_count=cloud.machine_count,
            labels=label_table.labels() if label_table is not None else (),
            node_count=cloud.node_count,
            edge_count=cloud.edge_count,
            machines=tuple(specs["machines"]),
            global_nodes=specs["global_nodes"],
            global_labels=specs["global_labels"],
            assignment_ids=specs["assignment_ids"],
            assignment_machines=specs["assignment_machines"],
        )
        return handle, registry
    try:
        machine_specs: List[MachineSpec] = []
        for machine in cloud.machines:
            ids, label_ids, offsets, neighbors = machine.csr_arrays()
            machine_specs.append(
                (
                    registry.publish(ids),
                    registry.publish(label_ids),
                    registry.publish(offsets),
                    registry.publish(neighbors),
                )
            )
        global_nodes, global_labels = cloud.global_label_arrays()
        assignment_ids, assignment_machines = cloud.assignment.as_arrays()
        label_table = cloud.label_table
        handle = CloudHandle(
            machine_count=cloud.machine_count,
            labels=label_table.labels() if label_table is not None else (),
            node_count=cloud.node_count,
            edge_count=cloud.edge_count,
            machines=tuple(machine_specs),
            global_nodes=registry.publish(global_nodes),
            global_labels=registry.publish(global_labels),
            assignment_ids=registry.publish(assignment_ids),
            assignment_machines=registry.publish(assignment_machines),
        )
    except Exception:
        registry.close()
        raise
    return handle, registry


def rebuild_cloud(handle: CloudHandle) -> MemoryCloud:
    """Worker-side: reconstruct a cloud over zero-copy shared-memory views.

    The rebuilt cloud holds references to its attached segments (they stay
    mapped for the worker's lifetime) and owns fresh per-process lazy
    caches; label-pair metadata is absent because plans — including load
    sets — are computed on the driver and shipped with each task.  Specs
    go through :func:`~repro.storage.provider.attach_spec`, so an
    shm-published cloud and a snapshot-backed (mmap) one rebuild
    identically.
    """
    segments = []

    def attach(spec: ArraySpec):
        segment, view = attach_spec(spec)
        segments.append(segment)
        return view

    machine_arrays = [
        tuple(attach(spec) for spec in machine_spec)
        for machine_spec in handle.machines
    ]
    assignment = PartitionAssignment.from_arrays(
        handle.machine_count,
        attach(handle.assignment_ids),
        attach(handle.assignment_machines),
    )
    cloud = MemoryCloud.from_partition_state(
        config=ClusterConfig(
            machine_count=handle.machine_count, track_label_pairs=False
        ),
        label_table=LabelTable(handle.labels),
        machine_arrays=machine_arrays,
        assignment=assignment,
        global_node_ids=attach(handle.global_nodes),
        global_label_ids=attach(handle.global_labels),
        node_count=handle.node_count,
        edge_count=handle.edge_count,
    )
    # Keep the mappings alive as long as the cloud: every array above is a
    # view into these segments.
    cloud._attached_segments = segments  # type: ignore[attr-defined]
    return cloud


def publish_bindings(
    bindings: BindingTable, query: QueryGraph
) -> Tuple[BindingsHandle, SegmentRegistry]:
    """Publish every bound node's candidate array for one fan-out.

    The registry owns the blocks; close it once the tasks that received
    the handle have completed.
    """
    registry = ShmStorageProvider()
    try:
        specs = []
        for node in query.nodes():
            array = bindings.candidates_array(node)
            if array is not None:
                specs.append((node, registry.publish(array)))
    except Exception:
        registry.close()
        raise
    return BindingsHandle(tuple(specs)), registry


@contextmanager
def attached_bindings(
    handle: BindingsHandle, query: QueryGraph
) -> Iterator[BindingTable]:
    """Worker-side binding table over zero-copy views, attachment-scoped.

    The rebuilt table adopts the sorted views without copying; on exit the
    attachments close, so the table must not outlive the ``with`` block.
    """
    segments = []
    try:
        bindings = BindingTable(query)
        for node, spec in handle.specs:
            segment, view = attach_array(spec)
            segments.append(segment)
            bindings.bind(node, view)
        yield bindings
    finally:
        for segment in segments:
            segment.close()
