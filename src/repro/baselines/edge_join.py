"""Edge-index multi-way join baseline (the RDF-3X / BitMat strategy).

Category 2 of Table 1: build an index over distinct edges keyed by the
(unordered) label pair of their endpoints, decompose the query into its
edges, look every query edge up in the index, and assemble answers with
multi-way joins.  This is the "join only, no exploration" counterpoint to
the STwig engine — correct, index size O(m), but it materializes one
candidate table per query edge and pays for every join.

The intermediate-result accounting (:class:`EdgeJoinStats`) is what the
exploration-vs-join benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.join import multiway_join, select_join_order
from repro.core.result import MatchTable
from repro.graph.labeled_graph import LabeledGraph
from repro.query.query_graph import QueryGraph


class EdgeIndex:
    """Index of data edges keyed by the unordered label pair of their endpoints."""

    def __init__(self, graph: LabeledGraph) -> None:
        self._graph = graph
        self._by_label_pair: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
        for u, v in graph.edges():
            key = self._key(graph.label(u), graph.label(v))
            self._by_label_pair.setdefault(key, []).append((u, v))

    @staticmethod
    def _key(label_a: str, label_b: str) -> Tuple[str, str]:
        return (label_a, label_b) if label_a <= label_b else (label_b, label_a)

    def edges_for(self, label_a: str, label_b: str) -> List[Tuple[int, int]]:
        """All data edges whose endpoint labels are {label_a, label_b}."""
        return list(self._by_label_pair.get(self._key(label_a, label_b), ()))

    def size_in_entries(self) -> int:
        """Number of indexed edge entries (the Table 1 index-size column)."""
        return sum(len(edges) for edges in self._by_label_pair.values())


@dataclass
class EdgeJoinStats:
    """Execution statistics of one edge-join query."""

    edge_tables: int = 0
    intermediate_rows: int = 0
    table_sizes: List[int] = field(default_factory=list)


def edge_join_match(
    graph: LabeledGraph,
    query: QueryGraph,
    index: Optional[EdgeIndex] = None,
    limit: Optional[int] = None,
    stats: Optional[EdgeJoinStats] = None,
) -> List[Dict[str, int]]:
    """Answer ``query`` by joining per-edge candidate tables.

    Args:
        graph: the data graph.
        query: the query pattern.
        index: a prebuilt :class:`EdgeIndex` (built on the fly if omitted).
        limit: stop after this many matches.
        stats: optional accumulator for intermediate-result accounting.
    """
    index = index or EdgeIndex(graph)
    tables: List[MatchTable] = []
    for qu, qv in query.edges():
        label_u = query.label(qu)
        label_v = query.label(qv)
        rows: List[Tuple[int, int]] = []
        for u, v in index.edges_for(label_u, label_v):
            if graph.label(u) == label_u and graph.label(v) == label_v:
                rows.append((u, v))
            if graph.label(v) == label_u and graph.label(u) == label_v:
                rows.append((v, u))
        table = MatchTable((qu, qv), rows)
        tables.append(table)
        if stats is not None:
            stats.table_sizes.append(table.row_count)
    if stats is not None:
        stats.edge_tables = len(tables)
        stats.intermediate_rows = sum(stats.table_sizes)

    if not tables:
        # Single-node query: every node with the right label is a match.
        node = query.nodes()[0]
        matches = [
            {node: data_node} for data_node in graph.nodes_with_label(query.label(node))
        ]
        return matches[:limit] if limit is not None else matches

    if any(table.row_count == 0 for table in tables):
        return []

    # Fixed seed: the baseline must stay deterministic now that join-order
    # selection actually samples rows.
    order = select_join_order(tables, rng=0)
    joined = multiway_join(tables, order=order, row_limit=limit, block_size=None)
    # Pure column normalization: reorder keeps bag semantics, so a row limit
    # above cannot be silently re-shrunk by projection dedup.
    normalized = joined.reorder(query.nodes())
    return normalized.as_dicts()
