"""VF2-style subgraph isomorphism (Cordella et al. 2004).

The second "no index" baseline from Table 1, and the correctness oracle used
by the test suite: the STwig engine's results are cross-checked against this
implementation on randomly generated graphs and queries.

The implementation follows VF2's state-space search with the standard
feasibility rules adapted to undirected vertex-labeled graphs:

* label compatibility,
* consistency of already-mapped neighbors,
* a look-ahead that compares the number of unmapped data neighbors with the
  number of unmapped query neighbors.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graph.labeled_graph import LabeledGraph
from repro.query.query_graph import QueryGraph


def vf2_match(
    graph: LabeledGraph,
    query: QueryGraph,
    limit: Optional[int] = None,
) -> List[Dict[str, int]]:
    """Enumerate subgraph isomorphisms of ``query`` in ``graph`` (VF2 search).

    Args:
        graph: the data graph.
        query: the query pattern.
        limit: stop after this many matches (None = all).
    """
    matcher = _Vf2State(graph, query, limit)
    matcher.search()
    return matcher.results


class _Vf2State:
    """Mutable search state for the VF2 recursion."""

    def __init__(self, graph: LabeledGraph, query: QueryGraph, limit: Optional[int]) -> None:
        self.graph = graph
        self.query = query
        self.limit = limit
        self.results: List[Dict[str, int]] = []
        self.core_query: Dict[str, int] = {}
        self.core_data: Dict[int, str] = {}
        # Static matching order: most-constrained query node first (fewest
        # label candidates, then highest degree), subsequent nodes chosen to
        # stay connected to the already-ordered prefix.
        self.order = self._matching_order()
        self.candidates_by_node: Dict[str, List[int]] = {
            qnode: [
                node
                for node in graph.nodes_with_label(query.label(qnode))
                if graph.degree(node) >= query.degree(qnode)
            ]
            for qnode in query.nodes()
        }

    def _matching_order(self) -> List[str]:
        query = self.query
        graph = self.graph
        label_counts = graph.label_frequencies()
        remaining = set(query.nodes())
        order: List[str] = []

        def rank(qnode: str) -> tuple:
            return (label_counts.get(query.label(qnode), 0), -query.degree(qnode), qnode)

        first = min(remaining, key=rank)
        order.append(first)
        remaining.discard(first)
        while remaining:
            frontier = [
                qnode
                for qnode in remaining
                if any(neighbor in order for neighbor in query.neighbors(qnode))
            ]
            pool = frontier or sorted(remaining)
            chosen = min(pool, key=rank)
            order.append(chosen)
            remaining.discard(chosen)
        return order

    def search(self, depth: int = 0) -> bool:
        """Recursive VF2 search; returns True when the limit is reached."""
        if depth == len(self.order):
            self.results.append(dict(self.core_query))
            return self.limit is not None and len(self.results) >= self.limit
        qnode = self.order[depth]
        for data_node in self._candidate_pool(qnode):
            if data_node in self.core_data:
                continue
            if not self._feasible(qnode, data_node):
                continue
            self.core_query[qnode] = data_node
            self.core_data[data_node] = qnode
            if self.search(depth + 1):
                return True
            del self.core_query[qnode]
            del self.core_data[data_node]
        return False

    def _candidate_pool(self, qnode: str) -> List[int]:
        """Candidates for ``qnode``: neighbors of mapped neighbors when possible."""
        mapped_neighbors = [
            self.core_query[n] for n in self.query.neighbors(qnode) if n in self.core_query
        ]
        if mapped_neighbors:
            label = self.query.label(qnode)
            pool = {
                candidate
                for candidate in self.graph.neighbors(mapped_neighbors[0])
                if self.graph.label(candidate) == label
            }
            return sorted(pool)
        return self.candidates_by_node[qnode]

    def _feasible(self, qnode: str, data_node: int) -> bool:
        query = self.query
        graph = self.graph
        if graph.degree(data_node) < query.degree(qnode):
            return False
        # Consistency with already-mapped query neighbors.
        for qneighbor in query.neighbors(qnode):
            mapped = self.core_query.get(qneighbor)
            if mapped is not None and not graph.has_edge(data_node, mapped):
                return False
        # Look-ahead: enough unmapped data neighbors to host unmapped query neighbors.
        unmapped_query_neighbors = sum(
            1 for qneighbor in query.neighbors(qnode) if qneighbor not in self.core_query
        )
        unmapped_data_neighbors = sum(
            1 for neighbor in graph.neighbors(data_node) if neighbor not in self.core_data
        )
        return unmapped_data_neighbors >= unmapped_query_neighbors
