"""Baseline subgraph matching methods and analytic index cost models."""

from repro.baselines.cost_models import (
    FACEBOOK_SCALE,
    GraphScale,
    MethodCostModel,
    feasible_at_scale,
    table1_cost_models,
)
from repro.baselines.edge_join import EdgeIndex, EdgeJoinStats, edge_join_match
from repro.baselines.naive_exploration import naive_exploration_match
from repro.baselines.neighborhood_index import (
    NeighborhoodSignatureIndex,
    signature_match,
)
from repro.baselines.ullmann import ullmann_match
from repro.baselines.vf2 import vf2_match

__all__ = [
    "ullmann_match",
    "vf2_match",
    "naive_exploration_match",
    "EdgeIndex",
    "EdgeJoinStats",
    "edge_join_match",
    "NeighborhoodSignatureIndex",
    "signature_match",
    "GraphScale",
    "MethodCostModel",
    "table1_cost_models",
    "feasible_at_scale",
    "FACEBOOK_SCALE",
]
