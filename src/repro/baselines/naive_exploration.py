"""Naive graph-exploration matching over the memory cloud (Section 3).

The paper contrasts three strategies: pure joins over an edge index, *naive
graph exploration* (walk the graph query-edge by query-edge, backtracking),
and the STwig hybrid it proposes.  This module implements the naive
exploration strategy directly against the :class:`MemoryCloud` operators so
its cost — cell loads, label probes, cross-machine traffic — is measured by
the same accounting as the STwig engine, making the Section 3 trade-off
quantifiable (see ``bench_ablations.py``).

The algorithm: pick a starting query node (most selective label), seed its
candidates from the label index, and extend the partial embedding one query
node at a time, always choosing an unmatched query node adjacent to the
matched region and enumerating the data neighbors of its matched anchor.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cloud.cluster import MemoryCloud
from repro.query.query_graph import QueryGraph


def naive_exploration_match(
    cloud: MemoryCloud,
    query: QueryGraph,
    limit: Optional[int] = None,
) -> List[Dict[str, int]]:
    """Answer ``query`` by pure backtracking exploration over the cloud.

    Args:
        cloud: the memory cloud holding the data graph.
        query: the query pattern.
        limit: stop after this many matches (None = enumerate all).

    Returns:
        A list of assignments (query node -> data node), identical in
        content to the STwig engine's output.
    """
    order = _exploration_order(cloud, query)
    results: List[Dict[str, int]] = []
    assignment: Dict[str, int] = {}
    used: set[int] = set()

    start_label = query.label(order[0])
    start_candidates = cloud.get_ids(start_label)

    def extend(depth: int) -> bool:
        if depth == len(order):
            results.append(dict(assignment))
            return limit is not None and len(results) >= limit
        qnode = order[depth]
        for candidate in _candidates_for(cloud, query, assignment, qnode, start_candidates, depth):
            if candidate in used:
                continue
            if not _consistent(cloud, query, assignment, qnode, candidate):
                continue
            assignment[qnode] = candidate
            used.add(candidate)
            if extend(depth + 1):
                return True
            used.discard(candidate)
            del assignment[qnode]
        return False

    extend(0)
    return results


def _exploration_order(cloud: MemoryCloud, query: QueryGraph) -> List[str]:
    """Query-node visit order: rare start label, then stay connected."""
    frequencies = cloud.global_label_frequencies()

    def rank(qnode: str) -> tuple:
        return (frequencies.get(query.label(qnode), 0), -query.degree(qnode), qnode)

    remaining = set(query.nodes())
    order = [min(remaining, key=rank)]
    remaining.discard(order[0])
    while remaining:
        frontier = [
            qnode
            for qnode in remaining
            if any(neighbor in order for neighbor in query.neighbors(qnode))
        ]
        chosen = min(frontier or sorted(remaining), key=rank)
        order.append(chosen)
        remaining.discard(chosen)
    return order


def _candidates_for(
    cloud: MemoryCloud,
    query: QueryGraph,
    assignment: Dict[str, int],
    qnode: str,
    start_candidates,
    depth: int,
):
    """Candidate data nodes for ``qnode`` given the current partial embedding."""
    if depth == 0:
        return start_candidates
    anchors = [
        assignment[neighbor]
        for neighbor in query.neighbors(qnode)
        if neighbor in assignment
    ]
    if not anchors:
        # Disconnected exploration step (cannot happen for connected queries,
        # but keep the fallback total): scan the label index globally.
        return cloud.get_ids(query.label(qnode))
    # Explore from the first matched anchor: load its cell and keep neighbors
    # with the right label.
    anchor = anchors[0]
    cell = cloud.load(anchor, requester=cloud.owner_of(anchor))
    label = query.label(qnode)
    return [
        neighbor
        for neighbor in cell.neighbors
        if cloud.has_label(neighbor, label, requester=cloud.owner_of(anchor))
    ]


def _consistent(
    cloud: MemoryCloud,
    query: QueryGraph,
    assignment: Dict[str, int],
    qnode: str,
    candidate: int,
) -> bool:
    """Check edges between the candidate and all already-matched neighbors."""
    matched_neighbors = [
        assignment[qneighbor]
        for qneighbor in query.neighbors(qnode)
        if qneighbor in assignment
    ]
    if not matched_neighbors:
        return True
    cell = cloud.load(candidate, requester=cloud.owner_of(candidate))
    neighbor_set = set(cell.neighbors)
    return all(matched in neighbor_set for matched in matched_neighbors)
