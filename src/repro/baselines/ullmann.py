"""Ullmann's subgraph isomorphism algorithm (1976).

The first of the two "no index" baselines in Table 1.  Classic backtracking
over a candidate matrix with the refinement step: a candidate data node for
query node ``u`` survives only if each neighbor of ``u`` still has at least
one candidate among the data node's neighbors.

This implementation works on vertex-labeled undirected graphs and enumerates
all embeddings (bijective on query nodes), matching the semantics of the
STwig engine so results can be compared row-for-row in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graph.labeled_graph import LabeledGraph
from repro.query.query_graph import QueryGraph


def ullmann_match(
    graph: LabeledGraph,
    query: QueryGraph,
    limit: Optional[int] = None,
) -> List[Dict[str, int]]:
    """Enumerate all subgraph isomorphisms of ``query`` in ``graph``.

    Args:
        graph: the data graph.
        query: the query pattern.
        limit: stop after this many matches (None = all).

    Returns:
        A list of assignments (query node -> data node).
    """
    query_nodes = list(query.nodes())
    candidates: Dict[str, List[int]] = {}
    for qnode in query_nodes:
        label = query.label(qnode)
        degree = query.degree(qnode)
        candidates[qnode] = [
            node
            for node in graph.nodes_with_label(label)
            if graph.degree(node) >= degree
        ]
        if not candidates[qnode]:
            return []

    # Process query nodes in increasing candidate-count order for earlier pruning.
    order = sorted(query_nodes, key=lambda q: len(candidates[q]))
    results: List[Dict[str, int]] = []
    assignment: Dict[str, int] = {}
    used: set[int] = set()

    def refine(partial: Dict[str, int]) -> Optional[Dict[str, List[int]]]:
        """One pass of Ullmann's refinement given the current partial assignment."""
        refined: Dict[str, List[int]] = {}
        for qnode in query_nodes:
            if qnode in partial:
                refined[qnode] = [partial[qnode]]
                continue
            keep: List[int] = []
            for data_node in candidates[qnode]:
                if data_node in used:
                    continue
                ok = True
                for qneighbor in query.neighbors(qnode):
                    if qneighbor in partial:
                        if not graph.has_edge(data_node, partial[qneighbor]):
                            ok = False
                            break
                    else:
                        neighbor_candidates = candidates[qneighbor]
                        if not any(
                            graph.has_edge(data_node, other)
                            for other in neighbor_candidates
                        ):
                            ok = False
                            break
                if ok:
                    keep.append(data_node)
            if not keep:
                return None
            refined[qnode] = keep
        return refined

    def backtrack(depth: int) -> bool:
        """Return True when the result limit is reached."""
        if depth == len(order):
            results.append(dict(assignment))
            return limit is not None and len(results) >= limit
        qnode = order[depth]
        refined = refine(assignment)
        if refined is None:
            return False
        for data_node in refined[qnode]:
            if data_node in used:
                continue
            if not _consistent(graph, query, assignment, qnode, data_node):
                continue
            assignment[qnode] = data_node
            used.add(data_node)
            if backtrack(depth + 1):
                return True
            used.discard(data_node)
            del assignment[qnode]
        return False

    backtrack(0)
    return results


def _consistent(
    graph: LabeledGraph,
    query: QueryGraph,
    assignment: Dict[str, int],
    qnode: str,
    data_node: int,
) -> bool:
    """Check that mapping ``qnode -> data_node`` respects already-mapped edges."""
    for qneighbor in query.neighbors(qnode):
        mapped = assignment.get(qneighbor)
        if mapped is not None and not graph.has_edge(data_node, mapped):
            return False
    return True
