"""Analytic index cost models behind Table 1.

Table 1 of the paper compares subgraph matching methods by index size,
index construction time, and update cost, and extrapolates them to a
Facebook-scale graph (n = 800 M nodes, m = 100 B edges, d = 130).  Those
columns are analytic — none of the systems could actually index that graph —
so we reproduce them the same way: each method gets a cost model derived
from its published complexity, evaluated for arbitrary (n, m, d) and, in the
Table 1 benchmark, also cross-checked against measured sizes of the indices
we actually implement (edge index, neighborhood signatures, STwig string
index) on graphs small enough to build them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Entries-per-second throughput assumed when converting work into time.
#: Only used for order-of-magnitude "index time" estimates, as in the paper.
#: The value is calibrated against the paper's own extrapolations (e.g.
#: ">20 days" to build an edge index over Facebook's 10^11 edges), which
#: include sorting, compression, and disk I/O — far below raw memory speed.
DEFAULT_ENTRIES_PER_SECOND = 5e4


@dataclass(frozen=True)
class GraphScale:
    """Size parameters of a (possibly hypothetical) data graph."""

    nodes: float
    edges: float

    @property
    def average_degree(self) -> float:
        """Average degree ``d = 2m / n``."""
        return 2.0 * self.edges / self.nodes if self.nodes else 0.0


#: The Facebook-scale graph used in Table 1's rightmost columns.
FACEBOOK_SCALE = GraphScale(nodes=8e8, edges=1e11)


@dataclass(frozen=True)
class MethodCostModel:
    """Complexity-derived cost model of one method's index."""

    name: str
    category: str
    index_size_entries: float
    index_build_operations: float
    update_operations: float

    def index_time_seconds(
        self, throughput: float = DEFAULT_ENTRIES_PER_SECOND
    ) -> float:
        """Estimated index construction time at ``throughput`` entries/second."""
        return self.index_build_operations / throughput

    def as_row(self) -> Dict[str, float | str]:
        """Flat dict for table rendering."""
        return {
            "method": self.name,
            "category": self.category,
            "index_size_entries": self.index_size_entries,
            "index_build_ops": self.index_build_operations,
            "index_time_s": self.index_time_seconds(),
            "update_ops": self.update_operations,
        }


def table1_cost_models(
    scale: GraphScale,
    signature_radius: int = 2,
    gaddi_distance: int = 4,
) -> List[MethodCostModel]:
    """Instantiate the Table 1 cost models for a graph of the given scale.

    The formulas follow the complexity column of Table 1:

    * Ullmann / VF2 — no index at all.
    * RDF-3X / BitMat — edge index: O(m) size, O(m) build, O(d)/O(m) update.
    * Subdue / SpiderMine — frequent-subgraph mining: exponential build.
    * R-Join / Distance-Join — 2-hop index: O(n·m^1/2) size, O(n^4) build.
    * GraphQL / Zhao — r-neighborhood signatures: O(n·d^r).
    * GADDI — pairs within distance L: O(n·d^L).
    * STwig — string index only: O(n) size, O(n) build, O(1) update.
    """
    n, m, d = scale.nodes, scale.edges, scale.average_degree
    d_r = d**signature_radius
    d_l = d**gaddi_distance
    return [
        MethodCostModel("Ullmann", "no index", 0.0, 0.0, 0.0),
        MethodCostModel("VF2", "no index", 0.0, 0.0, 0.0),
        MethodCostModel("RDF-3X", "edge index", m, m, d),
        MethodCostModel("BitMat", "edge index", m, m, m),
        MethodCostModel("Subdue", "frequent subgraph", m, 2.0**40, m),
        MethodCostModel("SpiderMine", "frequent subgraph", m, 2.0**40, m),
        MethodCostModel("R-Join", "2-hop reachability", n * (m**0.5), n**4, n),
        MethodCostModel("Distance-Join", "2-hop reachability", n * (m**0.5), n**4, n),
        MethodCostModel("GraphQL", "neighborhood signature", m + n * d_r, m + n * d_r, d_r),
        MethodCostModel("Zhao-Han", "neighborhood signature", n * d_r, n * d_r, d_l),
        MethodCostModel("GADDI", "distance index", n * d_l, n * d_l, d_l),
        MethodCostModel("STwig", "string index only", n, n, 1.0),
    ]


def feasible_at_scale(
    model: MethodCostModel,
    max_entries: float = 1e12,
    max_build_seconds: float = 7 * 86_400.0,
) -> bool:
    """Whether a method's index is feasible under storage/time budgets.

    Table 1's point is that only the STwig string index stays feasible at
    Facebook scale; this predicate lets the benchmark state that claim as a
    boolean column instead of eyeballing huge numbers.
    """
    return (
        model.index_size_entries <= max_entries
        and model.index_time_seconds() <= max_build_seconds
    )
