"""Neighborhood-signature filter-and-verify baseline (GraphQL / Zhao & Han style).

Category 4 of Table 1: every data node is indexed with a *signature*
summarizing the labels found within radius ``r`` of it.  At query time,
candidates for a query node are the data nodes whose signature dominates the
query node's own signature (every required label appears at least as often);
surviving candidates are then verified with backtracking search.

The index size grows as ``O(n * d^r)`` — the super-linear cost Table 1
criticizes — which :func:`repro.baselines.cost_models` quantifies and the
Table 1 benchmark measures directly on graphs small enough to index.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.graph.labeled_graph import LabeledGraph
from repro.query.query_graph import QueryGraph


class NeighborhoodSignatureIndex:
    """Per-node multiset of labels within radius ``r``."""

    def __init__(self, graph: LabeledGraph, radius: int = 1) -> None:
        if radius < 1:
            raise ValueError("radius must be >= 1")
        self._graph = graph
        self.radius = radius
        self._signatures: Dict[int, Counter] = {}
        for node in graph.nodes():
            self._signatures[node] = self._signature_of(node)

    def _signature_of(self, node: int) -> Counter:
        frontier = {node}
        seen = {node}
        signature: Counter = Counter()
        for _ in range(self.radius):
            next_frontier = set()
            for current in frontier:
                for neighbor in self._graph.neighbors(current):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.add(neighbor)
                        signature[self._graph.label(neighbor)] += 1
            frontier = next_frontier
        return signature

    def signature(self, node: int) -> Counter:
        """The stored signature of ``node``."""
        return Counter(self._signatures[node])

    def candidates(self, graph_label: str, required: Counter) -> List[int]:
        """Nodes with ``graph_label`` whose signature dominates ``required``."""
        result = []
        for node in self._graph.nodes_with_label(graph_label):
            signature = self._signatures[node]
            if all(signature[label] >= count for label, count in required.items()):
                result.append(node)
        return result

    def size_in_entries(self) -> int:
        """Total signature entries (Table 1 index-size column)."""
        return sum(len(signature) for signature in self._signatures.values())


def signature_match(
    graph: LabeledGraph,
    query: QueryGraph,
    index: Optional[NeighborhoodSignatureIndex] = None,
    limit: Optional[int] = None,
) -> List[Dict[str, int]]:
    """Filter-and-verify subgraph matching using a neighborhood-signature index."""
    index = index or NeighborhoodSignatureIndex(graph, radius=1)
    candidates: Dict[str, List[int]] = {}
    for qnode in query.nodes():
        # Direct-neighbor label requirements; with radius > 1 this remains a
        # valid (weaker) filter since the signature only grows with radius.
        required = Counter(query.label(neighbor) for neighbor in query.neighbors(qnode))
        candidates[qnode] = index.candidates(query.label(qnode), required)
        if not candidates[qnode]:
            return []

    order = sorted(query.nodes(), key=lambda q: len(candidates[q]))
    results: List[Dict[str, int]] = []
    assignment: Dict[str, int] = {}
    used: set[int] = set()

    def backtrack(depth: int) -> bool:
        if depth == len(order):
            results.append(dict(assignment))
            return limit is not None and len(results) >= limit
        qnode = order[depth]
        for data_node in candidates[qnode]:
            if data_node in used:
                continue
            if any(
                qneighbor in assignment
                and not graph.has_edge(data_node, assignment[qneighbor])
                for qneighbor in query.neighbors(qnode)
            ):
                continue
            assignment[qnode] = data_node
            used.add(data_node)
            if backtrack(depth + 1):
                return True
            used.discard(data_node)
            del assignment[qnode]
        return False

    backtrack(0)
    return results
