"""The unified entry point: datasets in, sessions out, queries answered.

Everything the layers below do — ingestion, partitioning, snapshots, the
matcher, the query service — is reachable through three calls:

* :func:`load_dataset` — anything that describes a graph (a named built-in
  workload, an edge-list file, a DBLP XML dump, a snapshot directory, a
  saved ``<prefix>.labels``/``.edges`` pair, or a
  :class:`~repro.graph.labeled_graph.LabeledGraph` you already hold)
  becomes a loaded graph.
* :func:`open_snapshot` — a persistent snapshot directory becomes a live
  :class:`~repro.cloud.cluster.MemoryCloud` on the zero-copy mmap path.
* :func:`connect` — any dataset source becomes a :class:`Session`: a
  resident cloud fronted by admission-controlled, thread-safe
  :meth:`Session.query`, with per-call executor override.

Quickstart::

    import repro.api as api

    with api.connect("benchmarks/data/coauthor_5k.edges", machines=4) as db:
        result = db.query(\"\"\"
            node a rank1
            node b rank1
            node c rank1
            edge a b
            edge b c
            edge c a
        \"\"\", limit=100)
        for match in result.as_dicts():   # original dataset IDs
            print(match)

The older entry points (``MemoryCloud.from_graph`` + ``SubgraphMatcher``,
``QueryService``) remain public and unchanged — the facade composes them
and adds nothing they cannot do; it only decides *for* you.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Union

from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import ClusterConfig
from repro.core.planner import MatcherConfig
from repro.core.result import MatchResult
from repro.errors import ConfigurationError, GraphError, ServiceError
from repro.graph.labeled_graph import LabeledGraph
from repro.ingest import degree_band_labeler, ingest_dblp_xml, ingest_edge_list
from repro.query.parser import parse_query
from repro.query.query_graph import QueryGraph
from repro.runtime import ExecutorSpec, resolve_backend
from repro.serve.service import QueryService, ServiceConfig
from repro.storage.snapshot import open_graph_snapshot, snapshot_exists

__all__ = [
    "DATASETS",
    "Session",
    "connect",
    "load_dataset",
    "open_snapshot",
]

#: Named built-in datasets :func:`load_dataset` resolves (the synthetic
#: workload suite; real files are loaded by path).
DATASETS: Dict[str, Callable[[], LabeledGraph]] = {}


def _register_datasets() -> None:
    from repro.workloads import datasets

    DATASETS.update(
        {
            "tiny": datasets.tiny_example_graph,
            "figure5": datasets.paper_figure5_graph,
            "patents-small": datasets.patents_small,
            "wordnet-small": datasets.wordnet_small,
            "rmat": datasets.rmat_graph,
        }
    )


_register_datasets()

#: Any value :func:`load_dataset` accepts.
DatasetSource = Union[str, os.PathLike, LabeledGraph]


def load_dataset(
    source: DatasetSource,
    *,
    label_mode: str = "degree",
) -> LabeledGraph:
    """Load any dataset description into a :class:`LabeledGraph`.

    Resolution order:

    1. a :class:`LabeledGraph` instance passes through unchanged;
    2. a name in :data:`DATASETS` builds that synthetic workload;
    3. a snapshot directory (``manifest.json`` inside) reopens via
       :func:`~repro.storage.snapshot.open_graph_snapshot`;
    4. a ``<prefix>`` with ``<prefix>.labels``/``<prefix>.edges`` loads the
       labeled text format (:func:`repro.graph.io.load_graph`);
    5. a ``.xml`` file ingests as DBLP
       (:func:`~repro.ingest.ingest_dblp_xml`);
    6. any other existing file ingests as a whitespace/TSV edge list
       (:func:`~repro.ingest.ingest_edge_list`) — sparse or string IDs are
       remapped to the dense domain and results report original IDs.

    Args:
        source: dataset name, path, or graph.
        label_mode: labeling for unlabeled edge lists — ``"degree"``
            (degree-band labels, giving motif queries a multi-label
            domain) or ``"uniform"`` (every node labeled ``entity``).

    Raises:
        GraphError: when ``source`` matches none of the above, with the
            known dataset names in the message.
    """
    if isinstance(source, LabeledGraph):
        return source
    if label_mode not in ("degree", "uniform"):
        raise GraphError(
            f"unknown label_mode {label_mode!r} (expected 'degree' or 'uniform')"
        )
    name_or_path = os.fspath(source)
    if name_or_path in DATASETS:
        return DATASETS[name_or_path]()
    if snapshot_exists(name_or_path):
        return open_graph_snapshot(name_or_path)
    if os.path.exists(name_or_path + ".labels") and os.path.exists(
        name_or_path + ".edges"
    ):
        from repro.graph.io import load_graph

        return load_graph(name_or_path)
    if os.path.isfile(name_or_path):
        if name_or_path.endswith(".xml"):
            return ingest_dblp_xml(name_or_path)
        labeler = degree_band_labeler() if label_mode == "degree" else None
        return ingest_edge_list(name_or_path, labeler=labeler)
    raise GraphError(
        f"cannot resolve dataset {name_or_path!r}: not a built-in name "
        f"({', '.join(sorted(DATASETS))}), snapshot directory, saved "
        "graph prefix, or readable edge-list/DBLP-XML file"
    )


def open_snapshot(
    path: Union[str, os.PathLike],
    *,
    machines: Optional[int] = None,
    verify: bool = False,
) -> MemoryCloud:
    """Open a persistent snapshot directory as a live memory cloud.

    The zero-copy path of :meth:`MemoryCloud.open_snapshot
    <repro.cloud.cluster.MemoryCloud.open_snapshot>`: without ``machines``
    the cluster shape recorded in the snapshot is reused and the columns
    attach as ``np.memmap`` views.

    Args:
        path: snapshot directory.
        machines: override the machine count (forces a re-partition).
        verify: re-read every array and check its CRC32 before serving.
    """
    config = ClusterConfig(machine_count=machines) if machines else None
    return MemoryCloud.open_snapshot(os.fspath(path), config, verify=verify)


class Session:
    """A resident dataset plus everything needed to query it.

    Obtained from :func:`connect`.  One :class:`QueryService` (one plan
    cache, one admission semaphore) runs per executor backend, created
    lazily — so ``query(..., executor="process")`` on a session that
    normally runs serial spins the process pool up once and reuses it.

    Thread-safe to the same degree as :class:`QueryService`; use as a
    context manager (or call :meth:`close`) to release pools, shared
    memory, and — when the session loaded the dataset itself — the cloud.
    """

    def __init__(
        self,
        cloud: MemoryCloud,
        *,
        owns_cloud: bool,
        executor: ExecutorSpec = None,
        workers: Optional[int] = None,
        limit: Optional[int] = None,
        max_row_budget: Optional[int] = None,
        max_in_flight: int = 8,
        matcher_config: Optional[MatcherConfig] = None,
    ) -> None:
        self.cloud = cloud
        self._owns_cloud = owns_cloud
        self._executor = executor
        self._workers = workers
        self._limit = limit
        self._max_row_budget = max_row_budget
        self._max_in_flight = max_in_flight
        self._matcher_config = matcher_config
        self._services: Dict[str, QueryService] = {}
        self._closed = False

    # -- querying ----------------------------------------------------------

    def query(
        self,
        q: Union[str, QueryGraph],
        *,
        limit: Optional[int] = None,
        executor: ExecutorSpec = None,
    ) -> MatchResult:
        """Run one subgraph query and return its :class:`MatchResult`.

        The result materializes rows lazily from its
        :class:`~repro.core.tasks.TableHandle`: ``result.rows``,
        ``result.external_rows()`` and ``result.as_dicts()`` share a
        single gather and are the stable result API
        (``result.matches`` — the raw table — is deprecated).

        Args:
            q: a :class:`QueryGraph` or query text for
                :func:`~repro.query.parser.parse_query`.
            limit: per-call row budget (else the session default).
            executor: per-call backend override (e.g. ``"process"``); the
                session's default backend otherwise.
        """
        query = parse_query(q) if isinstance(q, str) else q
        service = self._service_for(executor)
        return service.submit(query, limit=limit)

    def explain(self, q: Union[str, QueryGraph]):
        """The query plan (decomposition, STwig order) without executing."""
        query = parse_query(q) if isinstance(q, str) else q
        return self._service_for(None).matcher.explain(query)

    def stats(self):
        """Service counters of the default backend's query service."""
        return self._service_for(None).stats()

    @property
    def id_map(self):
        """The dataset's external-ID map (``None`` for dense-ID graphs)."""
        return self.cloud.id_map

    def _service_for(self, executor: ExecutorSpec) -> QueryService:
        if self._closed:
            raise ServiceError("session is closed")
        spec = executor if executor is not None else self._executor
        key = spec if isinstance(spec, str) or spec is None else None
        if key is None and spec is not None:
            # Non-name specs (RuntimeConfig/Executor) key by identity.
            key = f"spec-{id(spec)}"
        else:
            key = resolve_backend(key)
        service = self._services.get(key)
        if service is None:
            service = QueryService(
                cloud=self.cloud,
                matcher_config=self._matcher_config,
                executor=spec,
                workers=self._workers,
                service_config=ServiceConfig(
                    max_in_flight=self._max_in_flight,
                    limit=self._limit,
                    max_row_budget=self._max_row_budget,
                ),
            )
            self._services[key] = service
        return service

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drain and close every backend service, then the cloud (if owned)."""
        if self._closed:
            return
        self._closed = True
        for service in self._services.values():
            service.close()
        self._services.clear()
        if self._owns_cloud:
            self.cloud.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Session(nodes={self.cloud.node_count}, "
            f"edges={self.cloud.edge_count}, "
            f"machines={self.cloud.machine_count}, closed={self._closed})"
        )


def connect(
    source: Union[DatasetSource, MemoryCloud],
    *,
    machines: int = 4,
    executor: ExecutorSpec = None,
    workers: Optional[int] = None,
    limit: Optional[int] = None,
    max_row_budget: Optional[int] = None,
    max_in_flight: int = 8,
    cluster_config: Optional[ClusterConfig] = None,
    matcher_config: Optional[MatcherConfig] = None,
    label_mode: str = "degree",
) -> Session:
    """Open a queryable :class:`Session` over any dataset source.

    ``source`` may be anything :func:`load_dataset` accepts, a snapshot
    directory (opened on the zero-copy path, keeping its recorded cluster
    shape unless ``machines``/``cluster_config`` overrides it), or an
    already-loaded :class:`MemoryCloud` (which the caller keeps owning).

    Args:
        source: dataset name/path/graph, snapshot directory, or cloud.
        machines: cluster size when the source must be partitioned.
        executor: default runtime backend for queries
            (``"serial"``/``"thread"``/``"process"``, a RuntimeConfig, or
            an Executor; ``None`` = ``REPRO_EXECUTOR`` env, then serial).
        workers: pool size for thread/process backends.
        limit: default row budget for queries submitted without one.
        max_row_budget: hard upper bound on any query's row budget.
        max_in_flight: concurrent-query admission bound.
        cluster_config: full cluster configuration (overrides ``machines``).
        matcher_config: engine knobs shared by every query.
        label_mode: forwarded to :func:`load_dataset` for edge-list files.
    """
    if cluster_config is not None and machines != 4:
        raise ConfigurationError(
            "pass the cluster shape either as machines= or inside "
            "cluster_config=, not both"
        )
    if isinstance(source, MemoryCloud):
        cloud, owns_cloud = source, False
    elif (
        not isinstance(source, LabeledGraph)
        and isinstance(source, (str, os.PathLike))
        and snapshot_exists(os.fspath(source))
    ):
        config = cluster_config
        if config is None and machines != 4:
            config = ClusterConfig(machine_count=machines)
        cloud = MemoryCloud.open_snapshot(os.fspath(source), config)
        owns_cloud = True
    else:
        graph = load_dataset(source, label_mode=label_mode)
        config = cluster_config or ClusterConfig(machine_count=machines)
        cloud = MemoryCloud.from_graph(graph, config)
        owns_cloud = True
    return Session(
        cloud,
        owns_cloud=owns_cloud,
        executor=executor,
        workers=workers,
        limit=limit,
        max_row_budget=max_row_budget,
        max_in_flight=max_in_flight,
        matcher_config=matcher_config,
    )
