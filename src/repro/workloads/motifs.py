"""Motif queries for real co-authorship graphs (the Figure-8-style workload).

The paper's real-graph evaluation runs small structural patterns — the
shapes below are the co-authorship classics, parameterized by the labels
the ingestion layer actually produced:

* :func:`coauthor_triangle` — three mutually connected authors (a closed
  collaboration);
* :func:`star_collaboration` — one author connected to ``leaves``
  collaborators (an advisor/lab pattern);
* :func:`cross_label_path` — a path alternating between two labels (a
  high-to-low-degree bridge under degree-band labels, or
  author/paper/author under the bipartite DBLP projection).

Each factory takes label names because real datasets label themselves: an
unlabeled edge list ingested with the degree-band labeler has ``rank0`` …
``rankK`` labels, a DBLP bipartite projection has ``author``/``paper``,
and a uniform ingest has only ``entity``.  :data:`MOTIFS` registers the
factories by name for the CLI and benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import QueryError
from repro.query.query_graph import QueryGraph

#: Default labels of an edge list ingested with the degree-band labeler.
DEFAULT_DENSE_LABEL = "rank1"
DEFAULT_HUB_LABEL = "rank2"


def coauthor_triangle(label: str = DEFAULT_DENSE_LABEL) -> QueryGraph:
    """Three authors who have all collaborated pairwise."""
    return QueryGraph(
        {"a": label, "b": label, "c": label},
        [("a", "b"), ("b", "c"), ("c", "a")],
    )


def star_collaboration(
    center_label: str = DEFAULT_HUB_LABEL,
    leaf_label: str = DEFAULT_DENSE_LABEL,
    leaves: int = 3,
) -> QueryGraph:
    """A hub author connected to ``leaves`` distinct collaborators."""
    if leaves < 1:
        raise QueryError(f"a star needs at least one leaf, got {leaves}")
    labels = {"center": center_label}
    edges = []
    for i in range(leaves):
        name = f"leaf{i}"
        labels[name] = leaf_label
        edges.append(("center", name))
    return QueryGraph(labels, edges)


def cross_label_path(
    label_a: str = DEFAULT_HUB_LABEL,
    label_b: str = DEFAULT_DENSE_LABEL,
    length: int = 2,
) -> QueryGraph:
    """A path of ``length`` edges alternating between two labels.

    ``length=2`` under the DBLP bipartite projection (``author``/``paper``)
    is exactly the "two authors of one paper" pattern.
    """
    if length < 1:
        raise QueryError(f"a path needs at least one edge, got {length}")
    labels = {
        f"n{i}": (label_a if i % 2 == 0 else label_b) for i in range(length + 1)
    }
    edges = [(f"n{i}", f"n{i + 1}") for i in range(length)]
    return QueryGraph(labels, edges)


#: Motif name -> factory (called with defaults by the CLI and benchmarks).
MOTIFS: Dict[str, Callable[..., QueryGraph]] = {
    "coauthor-triangle": coauthor_triangle,
    "star-collaboration": star_collaboration,
    "cross-label-path": cross_label_path,
}
