"""Canned data graphs used by the examples, tests, and benchmarks.

Each factory returns a deterministic graph (fixed seed) at a scale chosen so
the full benchmark suite completes in minutes on a laptop while preserving
the characteristics each paper experiment depends on.  The ``scale``
arguments can be raised for longer, more faithful runs.
"""

from __future__ import annotations

from functools import lru_cache

from repro.graph.generators.lookalike import patents_like, wordnet_like
from repro.graph.generators.power_law import generate_power_law
from repro.graph.generators.rmat import generate_rmat
from repro.graph.labeled_graph import LabeledGraph

#: Default seed for every canned dataset, so benchmark runs are reproducible.
DEFAULT_SEED = 20120827  # VLDB 2012 started on August 27.


@lru_cache(maxsize=None)
def tiny_example_graph() -> LabeledGraph:
    """The small Figure-1(a)-style data graph used in docs and unit tests.

    Nodes 1, 2 carry label ``a``; 3, 6 carry ``b``; 4 carries ``c``; 5
    carries ``d``.  Querying the triangle-with-tail pattern
    (a-b, a-c, b-c, c-d) yields exactly two matches, mirroring the paper's
    introductory example.
    """
    labels = {
        1: "a", 2: "a",
        3: "b",
        4: "c",
        5: "d",
        6: "b",
    }
    edges = [
        (1, 3), (1, 4),
        (2, 3), (2, 4),
        (3, 4),
        (4, 5),
        (5, 6),
    ]
    return LabeledGraph.from_edges(labels, edges)


@lru_cache(maxsize=None)
def paper_figure5_graph() -> LabeledGraph:
    """A Figure-5-inspired multi-label graph (22 nodes, labels a–f).

    Node IDs encode the figure's naming: label index * 100 + suffix, e.g.
    ``a2`` -> 102.  The layout is used by tests of STwig matching and of the
    cluster-graph machinery; exact ground truth is always recomputed with
    the VF2 baseline rather than transcribed from the paper.
    """
    label_codes = {"a": 1, "b": 2, "c": 3, "d": 4, "e": 5, "f": 6}

    def node(name: str) -> int:
        return label_codes[name[0]] * 100 + int(name[1:])

    names = [
        "a1", "a2", "a3",
        "b1", "b2", "b3", "b4",
        "c1", "c2", "c3",
        "d1", "d2", "d3", "d4",
        "e1", "e2", "e3", "e4",
        "f1", "f2", "f3", "f4",
    ]
    labels = {node(name): name[0] for name in names}
    edge_names = [
        ("a1", "b1"), ("a1", "b4"), ("a1", "c1"),
        ("a2", "b1"), ("a2", "b2"), ("a2", "c1"), ("a2", "c2"), ("a2", "c3"),
        ("a3", "b2"), ("a3", "c2"), ("a3", "c3"),
        ("b1", "c1"), ("b1", "c2"), ("b1", "c3"),
        ("b2", "c1"), ("b2", "c2"), ("b2", "c3"),
        ("b1", "e1"), ("b2", "e2"), ("b4", "e1"),
        ("b1", "f1"), ("b2", "f2"),
        ("d1", "b1"), ("d1", "c1"), ("d1", "e1"), ("d1", "f1"),
        ("d2", "b2"), ("d2", "c2"), ("d2", "e2"), ("d2", "f2"),
        ("d3", "b4"), ("d3", "c3"), ("d3", "e3"), ("d3", "f3"),
        ("d4", "e4"), ("d4", "f4"), ("d4", "b3"), ("d4", "c3"),
        ("e1", "f1"), ("e2", "f2"), ("e3", "f3"), ("e4", "f4"),
    ]
    edges = [(node(u), node(v)) for u, v in edge_names]
    return LabeledGraph.from_edges(labels, edges)


@lru_cache(maxsize=None)
def patents_small(scale: float = 0.003) -> LabeledGraph:
    """US-Patents-like graph at benchmark scale (~11K nodes by default)."""
    return patents_like(scale=scale, seed=DEFAULT_SEED)


@lru_cache(maxsize=None)
def wordnet_small(scale: float = 0.15) -> LabeledGraph:
    """WordNet-like graph at benchmark scale (~12K nodes by default)."""
    return wordnet_like(scale=scale, seed=DEFAULT_SEED)


@lru_cache(maxsize=None)
def rmat_graph(
    node_count: int = 8192,
    average_degree: float = 16.0,
    label_density: float = 0.01,
) -> LabeledGraph:
    """R-MAT graph matching the synthetic experiments' default shape."""
    return generate_rmat(
        node_count=node_count,
        average_degree=average_degree,
        label_density=label_density,
        seed=DEFAULT_SEED,
    )


#: Default size of the "large" scale-gate graphs (paper-scale sweeps start
#: at 1M nodes; the vectorized generators produce this in seconds).
LARGE_NODE_COUNT = 1_000_000


@lru_cache(maxsize=None)
def rmat_large(
    node_count: int = LARGE_NODE_COUNT,
    average_degree: float = 8.0,
    label_density: float = 1e-3,
) -> LabeledGraph:
    """Million-node R-MAT graph for the nightly scale gate and Table 2/Fig 10."""
    return generate_rmat(
        node_count=node_count,
        average_degree=average_degree,
        label_density=label_density,
        seed=DEFAULT_SEED,
    )


@lru_cache(maxsize=None)
def power_law_large(
    node_count: int = LARGE_NODE_COUNT,
    average_degree: float = 8.0,
    label_density: float = 1e-3,
) -> LabeledGraph:
    """Million-node Chung–Lu power-law graph for the nightly scale gate."""
    return generate_power_law(
        node_count=node_count,
        average_degree=average_degree,
        label_density=label_density,
        seed=DEFAULT_SEED,
    )
