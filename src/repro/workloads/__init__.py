"""Canned datasets and query suites for examples and benchmarks."""

from repro.workloads.datasets import (
    DEFAULT_SEED,
    paper_figure5_graph,
    patents_small,
    rmat_graph,
    tiny_example_graph,
    wordnet_small,
)
from repro.workloads.motifs import (
    MOTIFS,
    coauthor_triangle,
    cross_label_path,
    star_collaboration,
)
from repro.workloads.suites import (
    DEFAULT_BATCH_SIZE,
    PAPER_RESULT_LIMIT,
    QuerySuite,
    dfs_suite,
    random_suite,
)

__all__ = [
    "DEFAULT_SEED",
    "MOTIFS",
    "tiny_example_graph",
    "paper_figure5_graph",
    "patents_small",
    "wordnet_small",
    "rmat_graph",
    "coauthor_triangle",
    "cross_label_path",
    "star_collaboration",
    "QuerySuite",
    "dfs_suite",
    "random_suite",
    "PAPER_RESULT_LIMIT",
    "DEFAULT_BATCH_SIZE",
]
