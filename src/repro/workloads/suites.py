"""Query suites reproducing the paper's workload protocol.

The paper generates 100 queries per configuration and reports the average
execution time; the pipelined join stops at 1024 matches.  The functions
here generate equivalent (smaller, configurable) batches so the benchmark
files stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graph.labeled_graph import LabeledGraph
from repro.query.generators import query_workload
from repro.query.query_graph import QueryGraph

#: The paper stops pipelined query execution after this many matches.
PAPER_RESULT_LIMIT = 1024

#: Default number of queries per configuration (the paper uses 100).
DEFAULT_BATCH_SIZE = 10


@dataclass(frozen=True)
class QuerySuite:
    """A named batch of queries over one data graph."""

    name: str
    kind: str
    node_count: int
    edge_count: int
    queries: List[QueryGraph]

    def __len__(self) -> int:
        return len(self.queries)


def dfs_suite(
    graph: LabeledGraph,
    node_count: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 1,
    name: str = "dfs",
) -> QuerySuite:
    """A batch of DFS queries of ``node_count`` nodes each."""
    queries = query_workload(
        graph, batch_size, kind="dfs", node_count=node_count, seed=seed
    )
    return QuerySuite(
        name=name,
        kind="dfs",
        node_count=node_count,
        edge_count=-1,
        queries=queries,
    )


def random_suite(
    graph: LabeledGraph,
    node_count: int,
    edge_count: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 1,
    name: str = "random",
) -> QuerySuite:
    """A batch of random connected queries with the given size."""
    queries = query_workload(
        graph,
        batch_size,
        kind="random",
        node_count=node_count,
        edge_count=edge_count,
        seed=seed,
    )
    return QuerySuite(
        name=name,
        kind="random",
        node_count=node_count,
        edge_count=edge_count,
        queries=queries,
    )
