"""Command-line interface for the repro library.

Three subcommands cover the common workflows without writing Python:

* ``generate`` — produce a synthetic labeled graph and save it to disk::

      python -m repro generate --kind rmat --nodes 10000 --degree 8 \
          --label-density 0.01 --seed 1 --out /tmp/g

* ``ingest`` — turn a real dataset (whitespace/TSV edge list with sparse
  or string IDs, or a DBLP XML dump) into a persistent snapshot; external
  IDs are remapped to the dense domain and the mapping is stored, so
  queries answer in the original IDs::

      python -m repro ingest --edges coauthor.tsv --out /tmp/co.snap
      python -m repro ingest --dblp-xml dblp.xml --out /tmp/dblp.snap

* ``query`` — run a query written in the textual format (``node``/``edge``
  lines) over a saved graph, an ingested/named dataset, or a snapshot::

      python -m repro query --graph /tmp/g --query-file pattern.q \
          --machines 4 --limit 1024
      python -m repro query --dataset coauthor.tsv --query-file motif.q
      python -m repro query --snapshot /tmp/co.snap --query-file motif.q

* ``experiment`` — run one of the paper's experiments and print its table::

      python -m repro experiment table2
      python -m repro experiment fig10d

* ``serve`` — keep the graph resident and answer a stream of queries read
  from stdin (blank-line-separated blocks in the textual format, or a line
  naming a query file)::

      python -m repro serve --graph /tmp/g --machines 4 --executor process

* ``bench-serve`` — drive an always-on service from N concurrent clients
  and report throughput and latency percentiles::

      python -m repro bench-serve --graph /tmp/g --clients 8 --rounds 3

Persistent snapshots (the memmap column store) get four subcommands —
``save`` a loaded graph as a snapshot, ``open`` one to inspect it,
``append`` edge/label deltas to its log, and ``compact`` the log into a
new base generation::

      python -m repro save --graph /tmp/g --out /tmp/g.snap --machines 4
      python -m repro open --snapshot /tmp/g.snap --verify
      python -m repro append --snapshot /tmp/g.snap --edge 17 42 --node 99 L3
      python -m repro compact --snapshot /tmp/g.snap

``query`` and ``serve`` take their data from exactly one of ``--graph``
(a saved prefix), ``--dataset`` (anything ``repro.api.load_dataset``
resolves: a built-in name, an edge list, DBLP XML), or ``--snapshot``
(near-constant open instead of a reload).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.bench import experiments, future_work
from repro.bench.reporting import format_table
from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import EXECUTOR_BACKENDS, ClusterConfig, RuntimeConfig
from repro.core.engine import SubgraphMatcher
from repro.core.planner import MatcherConfig
from repro.graph.generators import (
    generate_gnm,
    generate_power_law,
    generate_rmat,
    patents_like,
    wordnet_like,
)
from repro.graph.io import load_graph, save_graph
from repro.query.parser import parse_query

#: Experiment name -> zero-argument driver producing table rows.
EXPERIMENTS: Dict[str, Callable[[], List[dict]]] = {
    "table1": experiments.table1_method_comparison,
    "table2": experiments.table2_loading_times,
    "fig8a": experiments.figure8a_dfs_query_size,
    "fig8b": experiments.figure8b_random_query_size,
    "fig8c": experiments.figure8c_random_edge_count,
    "fig9a": lambda: experiments.figure9_speedup(kind="dfs"),
    "fig9b": lambda: experiments.figure9_speedup(kind="random"),
    "fig10a": experiments.figure10a_graph_size_fixed_degree,
    "fig10b": experiments.figure10b_graph_size_fixed_density,
    "fig10c": experiments.figure10c_average_degree,
    "fig10d": experiments.figure10d_label_density,
    "ablation-opts": experiments.ablation_optimizations,
    "ablation-blocks": experiments.ablation_block_size,
    "throughput": future_work.throughput_vs_machines,
    "transmitted-data": future_work.transmitted_data_vs_machines,
    "latency-bounds": future_work.response_time_bounds,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STwig subgraph matching (VLDB 2012 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic labeled graph")
    generate.add_argument(
        "--kind",
        choices=["rmat", "gnm", "power-law", "patents-like", "wordnet-like"],
        default="rmat",
    )
    generate.add_argument("--nodes", type=int, default=10_000)
    generate.add_argument("--degree", type=float, default=8.0)
    generate.add_argument("--edges", type=int, help="edge count (gnm only)")
    generate.add_argument("--label-density", type=float, default=0.01)
    generate.add_argument("--scale", type=float, help="scale factor (look-alikes only)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output path prefix")

    query = subparsers.add_parser("query", help="run a subgraph query over a saved graph")
    query.add_argument("--graph", help="graph path prefix (from 'generate')")
    query.add_argument(
        "--snapshot",
        help="snapshot directory (from 'save' or 'ingest'); alternative to "
        "--graph, using the cluster shape recorded in the snapshot",
    )
    query.add_argument(
        "--dataset",
        help="dataset for repro.api.load_dataset: a built-in name, an "
        "edge-list file (sparse/string IDs are remapped), or DBLP XML; "
        "alternative to --graph",
    )
    query.add_argument("--query-file", required=True, help="query in the textual node/edge format")
    query.add_argument("--machines", type=int, default=4)
    query.add_argument("--limit", type=int, default=1024)
    query.add_argument(
        "--executor",
        choices=list(EXECUTOR_BACKENDS),
        default=None,
        help="cluster runtime backend (default: REPRO_EXECUTOR env or serial)",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=None,
        help="thread/process pool size (default: min(machines, CPU cores))",
    )
    query.add_argument("--max-stwig-leaves", type=int, default=None)
    query.add_argument("--show", type=int, default=5, help="number of matches to print")
    query.add_argument("--explain", action="store_true", help="print the query plan")

    experiment = subparsers.add_parser("experiment", help="run one paper experiment")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))

    serve = subparsers.add_parser(
        "serve", help="answer a stream of stdin queries over a resident graph"
    )
    serve.add_argument("--graph", help="graph path prefix (from 'generate')")
    serve.add_argument(
        "--snapshot",
        help="snapshot directory (from 'save' or 'ingest'); alternative to "
        "--graph — the service restarts from it in near-constant time",
    )
    serve.add_argument(
        "--dataset",
        help="dataset for repro.api.load_dataset (built-in name, edge list, "
        "or DBLP XML); alternative to --graph",
    )
    serve.add_argument("--machines", type=int, default=4)
    serve.add_argument(
        "--limit",
        type=int,
        default=1024,
        help="default per-query row budget (0 = unlimited)",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=8, help="admission control: concurrent queries"
    )
    serve.add_argument(
        "--max-row-budget",
        type=int,
        default=None,
        help="admission control: reject queries asking for more rows",
    )
    serve.add_argument(
        "--executor",
        choices=list(EXECUTOR_BACKENDS),
        default=None,
        help="cluster runtime backend (default: REPRO_EXECUTOR env or serial)",
    )
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument("--show", type=int, default=3, help="matches to print per query")

    bench_serve = subparsers.add_parser(
        "bench-serve", help="benchmark the always-on service with concurrent clients"
    )
    bench_serve.add_argument(
        "--graph", default=None, help="graph path prefix (default: a generated R-MAT graph)"
    )
    bench_serve.add_argument("--nodes", type=int, default=20_000, help="generated-graph size")
    bench_serve.add_argument("--degree", type=float, default=8.0)
    bench_serve.add_argument("--label-density", type=float, default=0.01)
    bench_serve.add_argument("--machines", type=int, default=4)
    bench_serve.add_argument("--clients", type=int, default=4)
    bench_serve.add_argument("--queries", type=int, default=12, help="distinct queries in the mix")
    bench_serve.add_argument("--query-nodes", type=int, default=4, help="query size (nodes)")
    bench_serve.add_argument("--rounds", type=int, default=2, help="passes over the query mix")
    bench_serve.add_argument("--limit", type=int, default=1024)
    bench_serve.add_argument("--seed", type=int, default=1)
    bench_serve.add_argument(
        "--executor",
        choices=list(EXECUTOR_BACKENDS),
        default=None,
        help="cluster runtime backend (default: REPRO_EXECUTOR env or serial)",
    )
    bench_serve.add_argument("--workers", type=int, default=None)

    save = subparsers.add_parser(
        "save", help="save a graph as a persistent (memmap) snapshot"
    )
    save.add_argument("--graph", required=True, help="graph path prefix (from 'generate')")
    save.add_argument("--out", required=True, help="snapshot directory to write")
    save.add_argument(
        "--machines",
        type=int,
        default=4,
        help="partition for this many machines (snapshot reopens fastest "
        "on the same shape)",
    )
    save.add_argument(
        "--graph-only",
        action="store_true",
        help="store only the CSR columns, no partition state",
    )

    open_cmd = subparsers.add_parser(
        "open", help="open a snapshot and print what is inside"
    )
    open_cmd.add_argument("--snapshot", required=True, help="snapshot directory")
    open_cmd.add_argument(
        "--verify", action="store_true", help="check every array's checksum"
    )

    append = subparsers.add_parser(
        "append", help="append edge/label deltas to a snapshot's log"
    )
    append.add_argument("--snapshot", required=True, help="snapshot directory")
    append.add_argument(
        "--edge",
        nargs=2,
        type=int,
        action="append",
        metavar=("U", "V"),
        default=[],
        help="undirected edge to append (repeatable)",
    )
    append.add_argument(
        "--node",
        nargs=2,
        action="append",
        metavar=("ID", "LABEL"),
        default=[],
        help="node to add or relabel (repeatable)",
    )

    compact = subparsers.add_parser(
        "compact", help="fold a snapshot's delta log into a new base generation"
    )
    compact.add_argument("--snapshot", required=True, help="snapshot directory")

    ingest = subparsers.add_parser(
        "ingest",
        help="ingest a real dataset (edge list / DBLP XML) into a snapshot",
    )
    ingest.add_argument(
        "--edges",
        help="whitespace/TSV edge-list file; IDs may be sparse 64-bit "
        "integers or strings (remapped to the dense domain)",
    )
    ingest.add_argument("--dblp-xml", help="DBLP XML file (co-author projection)")
    ingest.add_argument(
        "--dblp-mode",
        choices=["coauthor", "bipartite"],
        default="coauthor",
        help="DBLP projection: co-author edges, or author/paper bipartite",
    )
    ingest.add_argument(
        "--label-mode",
        choices=["degree", "uniform"],
        default="degree",
        help="labels for unlabeled edge lists: degree bands (rank0..rankK) "
        "or a single 'entity' label",
    )
    ingest.add_argument("--out", required=True, help="snapshot directory to write")
    ingest.add_argument(
        "--machines",
        type=int,
        default=4,
        help="partition for this many machines (snapshot reopens fastest "
        "on the same shape)",
    )

    return parser


def _command_generate(args: argparse.Namespace) -> int:
    if args.kind == "rmat":
        graph = generate_rmat(args.nodes, args.degree, args.label_density, seed=args.seed)
    elif args.kind == "gnm":
        edge_count = args.edges if args.edges is not None else round(args.nodes * args.degree / 2)
        graph = generate_gnm(args.nodes, edge_count, seed=args.seed)
    elif args.kind == "power-law":
        graph = generate_power_law(
            args.nodes, args.degree, label_density=args.label_density, seed=args.seed
        )
    elif args.kind == "patents-like":
        graph = patents_like(scale=args.scale or 0.005, seed=args.seed)
    else:
        graph = wordnet_like(scale=args.scale or 0.25, seed=args.seed)
    label_path, edge_path = save_graph(args.out, graph)
    print(
        f"generated {graph.node_count} nodes / {graph.edge_count} edges "
        f"({len(graph.distinct_labels())} labels)"
    )
    print(f"labels: {label_path}\nedges:  {edge_path}")
    return 0


#: The one-of error shared by ``query`` and ``serve``.
_SOURCE_ERROR = "give exactly one of --dataset, --graph, or --snapshot"


def _open_cloud(args: argparse.Namespace) -> MemoryCloud:
    """Resolve --dataset/--graph/--snapshot into a loaded cloud."""
    dataset = getattr(args, "dataset", None)
    sources = sum(s is not None for s in (dataset, args.graph, args.snapshot))
    if sources != 1:
        raise SystemExit(_SOURCE_ERROR)
    if args.snapshot is not None:
        return MemoryCloud.open_snapshot(args.snapshot)
    if dataset is not None:
        from repro.api import load_dataset

        graph = load_dataset(dataset)
    else:
        graph = load_graph(args.graph)
    return MemoryCloud.from_graph(graph, ClusterConfig(machine_count=args.machines))


def _command_query(args: argparse.Namespace) -> int:
    query = parse_query(Path(args.query_file).read_text(encoding="utf-8"))
    runtime = RuntimeConfig(backend=args.executor, workers=args.workers)
    with _open_cloud(args) as cloud:
        with SubgraphMatcher(
            cloud,
            MatcherConfig(max_stwig_leaves=args.max_stwig_leaves),
            executor=runtime,
        ) as matcher:
            if args.explain:
                print(matcher.explain(query).describe())
            result = matcher.match(query, limit=args.limit)
    print(
        f"{result.match_count} matches in {result.wall_seconds * 1000:.1f} ms wall "
        f"({result.simulated_seconds * 1000:.1f} ms simulated cluster time, "
        f"{matcher.executor.name} executor)"
    )
    print(
        f"communication: {result.metrics['messages']} messages, "
        f"{result.metrics['bytes_transferred']} bytes"
    )
    for assignment in result.as_dicts()[: args.show]:
        print("  ", assignment)
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    rows = EXPERIMENTS[args.name]()
    print(format_table(rows, title=f"experiment: {args.name}"))
    return 0


def _read_query_blocks(stream) -> Iterator[str]:
    """Yield blank-line-separated query blocks from ``stream``.

    A one-line block naming an existing file loads the query text from that
    file, so an interactive session can mix inline patterns and saved ones.
    """
    pending: List[str] = []
    for raw_line in stream:
        if raw_line.strip():
            pending.append(raw_line)
            continue
        if pending:
            yield "".join(pending)
            pending = []
    if pending:
        yield "".join(pending)


def _command_serve(args: argparse.Namespace) -> int:
    from repro.query.parser import format_query
    from repro.serve import QueryService, ServiceConfig

    sources = sum(s is not None for s in (args.dataset, args.graph, args.snapshot))
    if sources != 1:
        raise SystemExit(_SOURCE_ERROR)
    runtime = RuntimeConfig(backend=args.executor, workers=args.workers)
    service_config = ServiceConfig(
        max_in_flight=args.max_in_flight,
        limit=args.limit if args.limit > 0 else None,
        max_row_budget=args.max_row_budget,
    )
    if args.snapshot is not None:
        source_args = {"snapshot": args.snapshot}
    else:
        if args.dataset is not None:
            from repro.api import load_dataset

            graph = load_dataset(args.dataset)
        else:
            graph = load_graph(args.graph)
        source_args = {
            "graph": graph,
            "cluster_config": ClusterConfig(machine_count=args.machines),
        }
    with QueryService(
        executor=runtime,
        service_config=service_config,
        **source_args,
    ) as service:
        cloud = service.cloud
        print(
            f"serving {cloud.node_count} nodes / {cloud.edge_count} edges on "
            f"{cloud.machine_count} machines ({service.matcher.executor.name} executor); "
            "enter node/edge lines, blank line to run, Ctrl-D to quit",
            flush=True,
        )
        served = 0
        for block in _read_query_blocks(sys.stdin):
            stripped = block.strip()
            if "\n" not in stripped and Path(stripped).is_file():
                stripped = Path(stripped).read_text(encoding="utf-8")
            try:
                query = parse_query(stripped)
                result = service.submit(query)
            except Exception as exc:  # noqa: BLE001 - interactive loop survives bad input
                print(f"error: {exc}", flush=True)
                continue
            served += 1
            cache = "hit" if result.stats.plan_cache_hit else "miss"
            print(
                f"[{served}] {result.match_count} matches in "
                f"{result.wall_seconds * 1000:.1f} ms (plan cache {cache}, "
                f"{result.stats.join_rows_materialized} join rows materialized, "
                f"peak {result.stats.join_peak_intermediate_rows}) for:\n"
                + "\n".join(f"    {line}" for line in format_query(query).splitlines()),
                flush=True,
            )
            for assignment in result.as_dicts()[: args.show]:
                print("   ", assignment, flush=True)
        stats = service.stats()
        print(
            f"served {stats.completed} queries ({stats.rows_returned} rows, "
            f"{stats.join_rows_materialized} join rows materialized, "
            f"{stats.plan_cache_hits} plan-cache hits / {stats.plan_cache_misses} misses)",
            flush=True,
        )
    return 0


def _command_bench_serve(args: argparse.Namespace) -> int:
    from repro.query.generators import query_workload
    from repro.serve import QueryService, ServiceConfig, run_concurrent_clients

    if args.graph:
        graph = load_graph(args.graph)
    else:
        graph = generate_rmat(
            args.nodes, args.degree, args.label_density, seed=args.seed
        )
    queries = query_workload(
        graph, args.queries, kind="dfs", node_count=args.query_nodes, seed=args.seed
    )
    runtime = RuntimeConfig(backend=args.executor, workers=args.workers)
    with QueryService(
        graph=graph,
        cluster_config=ClusterConfig(machine_count=args.machines),
        executor=runtime,
        service_config=ServiceConfig(max_in_flight=max(args.clients, 1)),
    ) as service:
        service.warm(queries[0])
        run = run_concurrent_clients(
            service, queries, clients=args.clients, limit=args.limit, rounds=args.rounds
        )
        summary = run.summary()
        stats = service.stats()
    for error in run.errors:
        print(f"error: {error}")
    print(
        f"{summary['queries']} queries from {args.clients} clients in "
        f"{summary['wall_seconds']:.3f} s -> {summary['queries_per_second']:.1f} qps"
    )
    print(
        f"latency p50 {summary['latency_p50_seconds'] * 1000:.2f} ms, "
        f"p99 {summary['latency_p99_seconds'] * 1000:.2f} ms, "
        f"max {summary['latency_max_seconds'] * 1000:.2f} ms"
    )
    print(
        f"plan cache: {stats.plan_cache_hits} hits / {stats.plan_cache_misses} misses"
    )
    return 1 if run.errors else 0


def _command_save(args: argparse.Namespace) -> int:
    from repro.storage import save_graph_snapshot

    graph = load_graph(args.graph)
    if args.graph_only:
        manifest = save_graph_snapshot(graph, args.out)
        shape = "graph-only"
    else:
        with MemoryCloud.from_graph(
            graph, ClusterConfig(machine_count=args.machines)
        ) as cloud:
            manifest = cloud.save_snapshot(args.out)
        shape = f"{args.machines} machines"
    print(
        f"saved {manifest.node_count} nodes / {manifest.edge_count} edges "
        f"({shape}, generation {manifest.generation}, "
        f"{len(manifest.arrays)} arrays) to {manifest.directory}"
    )
    return 0


def _command_open(args: argparse.Namespace) -> int:
    import time

    from repro.storage import DeltaLog, read_manifest

    manifest = read_manifest(args.snapshot, verify=args.verify)
    pending = DeltaLog(args.snapshot).count()
    started = time.perf_counter()
    cloud = MemoryCloud.open_snapshot(args.snapshot)
    opened = time.perf_counter() - started
    path = "memmap fast path" if cloud.storage_publication else "replayed reload"
    print(
        f"{manifest.node_count} nodes / {manifest.edge_count} edges, "
        f"{len(manifest.labels)} labels, generation {manifest.generation}"
    )
    print(
        f"cloud state: {manifest.machine_count or 'none'} machines, "
        f"{pending} pending delta records"
    )
    print(f"opened in {opened * 1000:.1f} ms ({path})"
          + (", checksums verified" if args.verify else ""))
    cloud.close()
    return 0


def _command_append(args: argparse.Namespace) -> int:
    from repro.storage import DeltaLog, read_manifest

    read_manifest(args.snapshot)  # fail early on a non-snapshot directory
    log = DeltaLog(args.snapshot)
    appended = log.append_nodes(
        (int(node_id), label) for node_id, label in args.node
    )
    appended += log.append_edges((u, v) for u, v in args.edge)
    print(
        f"appended {appended} records ({log.count()} total pending); "
        "they overlay at open time until 'compact' folds them in"
    )
    return 0


def _command_compact(args: argparse.Namespace) -> int:
    from repro.storage import DeltaLog, compact_snapshot, read_manifest

    before = read_manifest(args.snapshot)
    pending = DeltaLog(args.snapshot).count()
    manifest = compact_snapshot(args.snapshot)
    if manifest.generation == before.generation:
        print(f"nothing to compact (generation {manifest.generation})")
    else:
        print(
            f"folded {pending} delta records: generation "
            f"{before.generation} -> {manifest.generation}, now "
            f"{manifest.node_count} nodes / {manifest.edge_count} edges"
        )
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    from repro.ingest import degree_band_labeler, ingest_dblp_xml, ingest_edge_list

    if (args.edges is None) == (args.dblp_xml is None):
        raise SystemExit("give exactly one of --edges or --dblp-xml")
    if args.dblp_xml is not None:
        graph = ingest_dblp_xml(args.dblp_xml, mode=args.dblp_mode)
    else:
        labeler = degree_band_labeler() if args.label_mode == "degree" else None
        graph = ingest_edge_list(args.edges, labeler=labeler)
    report = graph.ingest_report
    print(report.summary())
    # The snapshot is the same log-structured store 'save' writes; the
    # external-ID map rides in the manifest so reopen round-trips it.
    with MemoryCloud.from_graph(
        graph, ClusterConfig(machine_count=args.machines)
    ) as cloud:
        manifest = cloud.save_snapshot(args.out)
    kind = manifest.id_map["kind"] if manifest.id_map else "dense (no map needed)"
    print(
        f"saved {manifest.node_count} nodes / {manifest.edge_count} edges "
        f"({args.machines} machines, {len(manifest.arrays)} arrays, "
        f"id map: {kind}) to {manifest.directory}"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` / the ``repro`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _command_generate(args)
    if args.command == "query":
        return _command_query(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "bench-serve":
        return _command_bench_serve(args)
    if args.command == "save":
        return _command_save(args)
    if args.command == "open":
        return _command_open(args)
    if args.command == "append":
        return _command_append(args)
    if args.command == "compact":
        return _command_compact(args)
    if args.command == "ingest":
        return _command_ingest(args)
    return 2  # pragma: no cover - argparse enforces the choices above


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
