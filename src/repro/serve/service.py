"""The always-on query service: one resident cloud, many concurrent queries.

The paper's engine is an *online service*: the graph is loaded into the
memory cloud once and stays resident while a stream of concurrent queries
runs against it.  :class:`QueryService` is that serving layer for the
reproduction — it owns (or adopts) a :class:`~repro.cloud.cluster.MemoryCloud`,
shares one :class:`~repro.core.engine.SubgraphMatcher` (and therefore one
executor pool and one plan cache) across every query, and multiplexes
callers through a thread-safe :meth:`QueryService.submit`.

Concurrency correctness comes from the layers below:

* every query records into an isolated metrics sink
  (:meth:`MemoryCloud.with_metrics`), merged into the shared totals once —
  overlapping queries report exactly the counters of their solo runs;
* the planner's plan cache memoizes STwig decomposition + join order by
  query fingerprint, so a recurring query shape skips planning entirely;
* the executors serialize their pool/publication lifecycle, so a process
  backend publishes the resident graph exactly once for all queries.

What the service adds on top is *admission control* and *lifecycle*:

* ``max_in_flight`` bounds concurrently executing queries (excess callers
  queue on a semaphore, optionally timing out into
  :class:`~repro.errors.AdmissionError`);
* per-query row budgets: queries without a limit get the configured
  default, and limits above ``max_row_budget`` are rejected outright;
* graceful shutdown: :meth:`QueryService.close` stops admitting, waits for
  in-flight queries to drain, then closes the matcher and (when the service
  loaded the graph itself) the cloud — in that order, so no query ever runs
  against torn-down runtime state.

An asyncio front-end is provided by :meth:`QueryService.submit_async` (and
``async with``), which runs the blocking submit on the event loop's default
thread pool.
"""

from __future__ import annotations

import asyncio
import functools
import threading
import time
from dataclasses import dataclass, replace
from typing import Optional

from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import ClusterConfig
from repro.core.engine import SubgraphMatcher
from repro.core.planner import MatcherConfig
from repro.core.result import MatchResult
from repro.errors import AdmissionError, ConfigurationError, ServiceError
from repro.query.query_graph import QueryGraph
from repro.runtime import ExecutorSpec, normalize_executor_spec
from repro.utils.deprecation import shim_renamed_kwarg as _shim_deprecated


@dataclass(frozen=True)
class ServiceConfig:
    """Admission-control and lifecycle knobs of a :class:`QueryService`.

    Attributes:
        max_in_flight: maximum number of queries executing concurrently;
            further submissions block until a slot frees (or time out).
        admission_timeout: seconds a submission may wait for a slot before
            being rejected with :class:`~repro.errors.AdmissionError`;
            ``None`` waits indefinitely.
        limit: row budget applied to queries submitted without one;
            ``None`` leaves unlimited queries unlimited.
            (``default_limit=`` is the deprecated spelling; reads of
            ``.default_limit`` return ``.limit``.)
        max_row_budget: upper bound on any query's row budget; submissions
            asking for more (or for no limit at all, when set) are rejected.
            ``None`` accepts any budget.  The admitted budget is a true
            cost cap, not just a result cap: it flows into the streaming
            budgeted join, which bounds the intermediate rows every machine
            materializes — per-query ``join_rows_materialized`` /
            ``join_peak_intermediate_rows`` (in
            :class:`~repro.core.result.StageStats` and the metrics
            snapshot) make the bound observable.
        drain_timeout: seconds :meth:`QueryService.close` waits for
            in-flight queries before raising :class:`ServiceError`;
            ``None`` waits indefinitely.
    """

    max_in_flight: int = 8
    admission_timeout: Optional[float] = None
    limit: Optional[int] = None
    max_row_budget: Optional[int] = None
    drain_timeout: Optional[float] = 60.0

    def __init__(
        self,
        max_in_flight: int = 8,
        admission_timeout: Optional[float] = None,
        limit: Optional[int] = None,
        max_row_budget: Optional[int] = None,
        drain_timeout: Optional[float] = 60.0,
        **deprecated,
    ) -> None:
        limit = _shim_deprecated(
            deprecated, "default_limit", "limit", limit, ServiceConfig
        )
        if deprecated:
            raise TypeError(
                f"unexpected keyword arguments {sorted(deprecated)} for ServiceConfig"
            )
        object.__setattr__(self, "max_in_flight", max_in_flight)
        object.__setattr__(self, "admission_timeout", admission_timeout)
        object.__setattr__(self, "limit", limit)
        object.__setattr__(self, "max_row_budget", max_row_budget)
        object.__setattr__(self, "drain_timeout", drain_timeout)

    @property
    def default_limit(self) -> Optional[int]:
        """Deprecated alias of :attr:`limit` (reads do not warn)."""
        return self.limit

    def validate(self) -> None:
        if self.max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be positive, got {self.max_in_flight}"
            )
        for name in ("admission_timeout", "drain_timeout"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigurationError(f"{name} must be non-negative, got {value}")
        for name in ("limit", "max_row_budget"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigurationError(f"{name} must be positive, got {value}")


@dataclass
class ServiceStats:
    """Cumulative counters of one :class:`QueryService` (a point snapshot)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    in_flight: int = 0
    rows_returned: int = 0
    join_rows_materialized: int = 0
    busy_seconds: float = 0.0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0


class QueryService:
    """A long-lived, thread-safe query front-end over one resident cloud.

    Construct from an already-loaded cloud (shared lifecycle: the caller
    keeps ownership and closes the cloud), from a graph (the service loads
    it and owns the resulting cloud), or from a persistent snapshot path
    (service restart without a reload; the service owns the reopened
    cloud)::

        with QueryService(graph=graph, cluster_config=ClusterConfig(4),
                          executor="process") as service:
            result = service.submit(query, limit=1024)

    ``submit`` may be called from any number of threads; ``submit_async``
    wraps it for asyncio callers.  See :class:`ServiceConfig` for admission
    control and :meth:`close` for the drain-then-teardown shutdown.
    """

    def __init__(
        self,
        cloud: Optional[MemoryCloud] = None,
        *,
        graph=None,
        snapshot=None,
        cluster_config: Optional[ClusterConfig] = None,
        matcher_config: Optional[MatcherConfig] = None,
        statistics=None,
        executor: ExecutorSpec = None,
        workers: Optional[int] = None,
        limit: Optional[int] = None,
        max_row_budget: Optional[int] = None,
        max_in_flight: Optional[int] = None,
        service_config: Optional[ServiceConfig] = None,
        **deprecated,
    ) -> None:
        """Create (and immediately start serving from) a query service.

        Args:
            cloud: an already-loaded memory cloud to serve from; stays owned
                by the caller.  Exactly one of ``cloud``/``graph``/
                ``snapshot`` is given.
            graph: a :class:`~repro.graph.labeled_graph.LabeledGraph` to
                load; the service owns (and closes) the resulting cloud.
            snapshot: path of a persistent snapshot directory
                (:meth:`MemoryCloud.save_snapshot
                <repro.cloud.cluster.MemoryCloud.save_snapshot>`) to reopen
                — the service-restart path: the cloud comes up via
                ``np.memmap`` in near-constant time instead of a full
                reload, and the service owns it.
            cluster_config: cluster shape used when loading ``graph`` or
                opening ``snapshot`` (``None`` takes the snapshot's own
                recorded shape).
            matcher_config: engine knobs shared by every query (including
                ``plan_cache_size``).
            statistics: optional edge statistics forwarded to the planner.
            executor: runtime backend spec shared by every query (a backend
                name, :class:`~repro.cloud.config.RuntimeConfig`, or an
                existing executor).
            workers: pool size for thread/process backends — the same
                spelling as ``SubgraphMatcher`` and the CLI's ``--workers``.
            limit: default row budget for queries submitted without one
                (``ServiceConfig.limit``).
            max_row_budget: upper bound on any query's row budget.
            max_in_flight: maximum concurrently executing queries.
            service_config: admission-control and lifecycle knobs; mutually
                exclusive with the ``limit``/``max_row_budget``/
                ``max_in_flight`` conveniences.
        """
        limit = _shim_deprecated(
            deprecated, "default_limit", "limit", limit, QueryService
        )
        workers = _shim_deprecated(
            deprecated, "max_workers", "workers", workers, QueryService
        )
        if deprecated:
            raise TypeError(
                f"unexpected keyword arguments {sorted(deprecated)} "
                "for QueryService"
            )
        sources = sum(source is not None for source in (cloud, graph, snapshot))
        if sources != 1:
            raise ConfigurationError(
                "construct QueryService from exactly one of cloud=, graph=, "
                "or snapshot="
            )
        overrides = {
            name: value
            for name, value in (
                ("limit", limit),
                ("max_row_budget", max_row_budget),
                ("max_in_flight", max_in_flight),
            )
            if value is not None
        }
        if overrides and service_config is not None:
            raise ConfigurationError(
                f"pass admission knobs ({', '.join(sorted(overrides))}) either "
                "directly or inside service_config=, not both"
            )
        if overrides:
            service_config = replace(ServiceConfig(), **overrides)
        self.service_config = service_config or ServiceConfig()
        self.service_config.validate()
        executor = normalize_executor_spec(executor, workers)
        self._owns_cloud = cloud is None
        if cloud is not None:
            self.cloud = cloud
        elif graph is not None:
            self.cloud = MemoryCloud.from_graph(graph, cluster_config)
        else:
            self.cloud = MemoryCloud.open_snapshot(snapshot, cluster_config)
        self._matcher = SubgraphMatcher(
            self.cloud, matcher_config, statistics=statistics, executor=executor
        )
        # Barrier: complete any staged lazy CSR merges now, while the
        # service is still single-threaded — concurrent queries then only
        # ever read the machines.
        self.cloud.flush_staged()
        self._slots = threading.BoundedSemaphore(self.service_config.max_in_flight)
        self._state = threading.Condition()
        self._stats = ServiceStats()
        self._closed = False

    # -- introspection -------------------------------------------------------

    @property
    def matcher(self) -> SubgraphMatcher:
        """The shared matcher (one executor pool, one plan cache)."""
        return self._matcher

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun; new submissions are rejected."""
        with self._state:
            return self._closed

    def stats(self) -> ServiceStats:
        """A consistent snapshot of the service counters (plus plan cache)."""
        with self._state:
            snapshot = replace(self._stats)
        cache_info = self._matcher.planner.plan_cache_info()
        snapshot.plan_cache_hits = cache_info["hits"]
        snapshot.plan_cache_misses = cache_info["misses"]
        return snapshot

    def warm(self, query: QueryGraph) -> None:
        """Fault in the runtime (pools, shared-memory publication) eagerly.

        Runs ``query`` with a row budget of one and discards the result —
        the paper's cluster is provisioned before traffic arrives, and a
        benchmark should not charge pool start-up to its first query.
        """
        self.submit(query, limit=1)

    # -- submission ----------------------------------------------------------

    def submit(self, query: QueryGraph, limit: Optional[int] = None) -> MatchResult:
        """Run one query and return its :class:`MatchResult` (thread-safe).

        Blocks while the service is at ``max_in_flight`` (subject to
        ``admission_timeout``).  Raises
        :class:`~repro.errors.AdmissionError` on rejection (budget above
        ``max_row_budget``, admission timeout) and
        :class:`~repro.errors.ServiceError` once the service is closed.
        """
        budget = self._admit(query, limit)
        started = time.perf_counter()
        try:
            result = self._matcher.match(query, limit=budget)
        except Exception:
            self._finish(started, failed=True)
            raise
        self._finish(
            started,
            rows=result.match_count,
            materialized=result.stats.join_rows_materialized,
        )
        return result

    async def submit_async(
        self, query: QueryGraph, limit: Optional[int] = None
    ) -> MatchResult:
        """Asyncio front-end: :meth:`submit` on the loop's default executor.

        Admission control applies unchanged — a coroutine waiting for a slot
        occupies one worker thread of the loop's pool, so size
        ``max_in_flight`` (or the loop's executor) accordingly.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(self.submit, query, limit)
        )

    def _admit(self, query: QueryGraph, limit: Optional[int]) -> Optional[int]:
        """Apply admission control; returns the effective row budget.

        On success a concurrency slot is held and the in-flight gauge is
        bumped; :meth:`_finish` must run exactly once afterwards.
        """
        del query  # shape-based admission (per-query cost caps) goes here
        config = self.service_config
        budget = limit if limit is not None else config.limit
        with self._state:
            if self._closed:
                raise ServiceError("query service is closed")
            if config.max_row_budget is not None and (
                budget is None or budget > config.max_row_budget
            ):
                self._stats.rejected += 1
                asked = "unlimited" if budget is None else str(budget)
                raise AdmissionError(
                    f"row budget {asked} exceeds max_row_budget="
                    f"{config.max_row_budget}"
                )
        if config.admission_timeout is not None:
            acquired = self._slots.acquire(timeout=config.admission_timeout)
        else:
            acquired = self._slots.acquire()
        if not acquired:
            with self._state:
                self._stats.rejected += 1
            raise AdmissionError(
                f"no execution slot within {config.admission_timeout}s "
                f"({config.max_in_flight} queries in flight)"
            )
        with self._state:
            if self._closed:
                # close() began while we waited for a slot: do not start.
                self._slots.release()
                raise ServiceError("query service is closed")
            self._stats.submitted += 1
            self._stats.in_flight += 1
        return budget

    def _finish(
        self,
        started: float,
        rows: int = 0,
        materialized: int = 0,
        failed: bool = False,
    ) -> None:
        elapsed = time.perf_counter() - started
        self._slots.release()
        with self._state:
            self._stats.in_flight -= 1
            self._stats.busy_seconds += elapsed
            if failed:
                self._stats.failed += 1
            else:
                self._stats.completed += 1
                self._stats.rows_returned += rows
                self._stats.join_rows_materialized += materialized
            self._state.notify_all()

    # -- lifecycle -----------------------------------------------------------

    def close(self, drain_timeout: Optional[float] = None) -> None:
        """Drain in-flight queries, then tear down the runtime (idempotent).

        New submissions are rejected immediately; queries already admitted
        run to completion.  Only then is the matcher closed and — when the
        service loaded the graph itself — ``MemoryCloud.close()`` called,
        so no query ever observes a torn-down executor or unlinked
        shared-memory segment.

        Args:
            drain_timeout: overrides ``service_config.drain_timeout``;
                raises :class:`ServiceError` (leaving the runtime up) if
                in-flight queries outlast it.
        """
        timeout = (
            drain_timeout
            if drain_timeout is not None
            else self.service_config.drain_timeout
        )
        with self._state:
            already_closed = self._closed
            self._closed = True
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._stats.in_flight > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    # Give a later close() another chance to drain.
                    raise ServiceError(
                        f"{self._stats.in_flight} queries still in flight "
                        f"after {timeout}s drain timeout"
                    )
                self._state.wait(remaining)
        if already_closed:
            return
        self._matcher.close()
        if self._owns_cloud:
            self.cloud.close()

    async def aclose(self, drain_timeout: Optional[float] = None) -> None:
        """Asyncio counterpart of :meth:`close` (drains off the event loop)."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, functools.partial(self.close, drain_timeout)
        )

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    async def __aenter__(self) -> "QueryService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"QueryService(cloud={self.cloud!r}, in_flight={stats.in_flight}, "
            f"completed={stats.completed}, closed={self.closed})"
        )
