"""The always-on serving layer: a resident cloud behind a concurrent API.

:class:`~repro.serve.service.QueryService` keeps one loaded (and, for the
process backend, shared-memory-published) :class:`~repro.cloud.cluster.MemoryCloud`
resident and multiplexes many concurrent queries over one shared matcher —
thread-safe ``submit``, an asyncio front-end, per-query admission control,
and a drain-before-teardown shutdown.  :mod:`repro.serve.bench` drives a
service from N client threads and reduces the latencies for benchmarks.
"""

from repro.serve.bench import (
    ClientRecord,
    ServiceRun,
    percentile,
    run_concurrent_clients,
    solo_baseline,
)
from repro.serve.service import QueryService, ServiceConfig, ServiceStats

__all__ = [
    "ClientRecord",
    "QueryService",
    "ServiceConfig",
    "ServiceRun",
    "ServiceStats",
    "percentile",
    "run_concurrent_clients",
    "solo_baseline",
]
