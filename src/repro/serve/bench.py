"""Serving-benchmark helpers: concurrent client drivers and latency stats.

Shared by the ``bench-serve`` CLI subcommand and
``benchmarks/bench_service.py``: both need to hammer one
:class:`~repro.serve.service.QueryService` from N client threads, collect
per-query latencies, and reduce them to throughput and percentile figures.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.query.query_graph import QueryGraph
from repro.serve.service import QueryService


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction`` percentile of ``samples`` by linear interpolation.

    ``fraction`` is in ``[0, 1]`` (``0.5`` = median).  Returns ``0.0`` for
    an empty sample set so report plumbing never divides by a missing key.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass
class ClientRecord:
    """One client query's outcome, as observed by the driver."""

    client: int
    query_index: int
    latency_seconds: float
    match_count: int
    metrics: Dict[str, int]
    plan_cache_hit: bool


@dataclass
class ServiceRun:
    """Aggregate outcome of one concurrent-clients run."""

    clients: int
    queries: int
    wall_seconds: float
    records: List[ClientRecord] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def latencies(self) -> List[float]:
        return [record.latency_seconds for record in self.records]

    @property
    def queries_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.records) / self.wall_seconds

    def summary(self) -> Dict[str, float]:
        """The report-ready reduction (qps and latency percentiles)."""
        latencies = self.latencies
        return {
            "clients": self.clients,
            "queries": len(self.records),
            "errors": len(self.errors),
            "wall_seconds": self.wall_seconds,
            "queries_per_second": self.queries_per_second,
            "latency_p50_seconds": percentile(latencies, 0.50),
            "latency_p99_seconds": percentile(latencies, 0.99),
            "latency_max_seconds": max(latencies, default=0.0),
            "plan_cache_hits": sum(1 for r in self.records if r.plan_cache_hit),
        }


def run_concurrent_clients(
    service: QueryService,
    queries: Sequence[QueryGraph],
    clients: int,
    limit: Optional[int] = None,
    rounds: int = 1,
) -> ServiceRun:
    """Drive ``service`` from ``clients`` threads and collect every outcome.

    The query list is dealt round-robin: client ``c`` runs queries
    ``c, c + clients, c + 2*clients, ...``, ``rounds`` times over.  All
    clients start together (a barrier) so the measured window is genuinely
    concurrent.  Exceptions are captured per client into ``errors`` rather
    than aborting the run.
    """
    if clients < 1:
        raise ValueError(f"clients must be positive, got {clients}")
    run = ServiceRun(clients=clients, queries=len(queries) * rounds, wall_seconds=0.0)
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client_main(client_id: int) -> None:
        barrier.wait()
        for round_index in range(rounds):
            for query_index in range(client_id, len(queries), clients):
                query = queries[query_index]
                started = time.perf_counter()
                try:
                    result = service.submit(query, limit=limit)
                except Exception as exc:  # noqa: BLE001 - reported, not hidden
                    with lock:
                        run.errors.append(
                            f"client {client_id} query {query_index} "
                            f"round {round_index}: {exc!r}"
                        )
                    continue
                record = ClientRecord(
                    client=client_id,
                    query_index=query_index,
                    latency_seconds=time.perf_counter() - started,
                    match_count=result.match_count,
                    metrics=dict(result.metrics),
                    plan_cache_hit=result.stats.plan_cache_hit,
                )
                with lock:
                    run.records.append(record)

    threads = [
        threading.Thread(target=client_main, args=(client_id,), daemon=True)
        for client_id in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    window_started = time.perf_counter()
    for thread in threads:
        thread.join()
    run.wall_seconds = time.perf_counter() - window_started
    return run


def solo_baseline(
    service: QueryService,
    queries: Sequence[QueryGraph],
    limit: Optional[int] = None,
) -> ServiceRun:
    """The same workload, one query at a time (the parity/latency baseline)."""
    return run_concurrent_clients(service, queries, clients=1, limit=limit)
