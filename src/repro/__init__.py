"""repro: a reproduction of "Efficient Subgraph Matching on Billion Node Graphs".

The package implements the paper's STwig-based, index-free distributed
subgraph matching algorithm on top of a simulated Trinity-style memory
cloud, plus the baselines, workloads, and benchmark harness needed to
regenerate the paper's evaluation.

Quickstart — :mod:`repro.api` is the documented entry point::

    import repro.api as api

    # any dataset source: a built-in name, an edge-list file (sparse or
    # string IDs are remapped transparently), a DBLP XML dump, or a
    # persistent snapshot directory
    with api.connect("rmat", machines=4, executor="process") as db:
        result = db.query(\"\"\"
            node u L1
            node v L2
            node w L3
            edge u v
            edge v w
            edge w u
        \"\"\", limit=1024)
        print(result.match_count, "matches")   # original dataset IDs

The composable layers underneath (``MemoryCloud`` + ``SubgraphMatcher``,
``QueryService``) remain public for callers that need finer control.
"""

from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import ClusterConfig, NetworkModel
from repro.core.engine import SubgraphMatcher
from repro.core.planner import MatcherConfig, QueryPlan
from repro.core.result import MatchResult, MatchTable
from repro.errors import ReproError
from repro.graph.builder import GraphBuilder
from repro.graph.labeled_graph import LabeledGraph
from repro.query.parser import parse_query
from repro.query.query_graph import QueryGraph

__version__ = "1.0.0"

__all__ = [
    "LabeledGraph",
    "GraphBuilder",
    "QueryGraph",
    "parse_query",
    "MemoryCloud",
    "ClusterConfig",
    "NetworkModel",
    "SubgraphMatcher",
    "MatcherConfig",
    "QueryPlan",
    "MatchResult",
    "MatchTable",
    "ReproError",
    "__version__",
]
