"""repro: a reproduction of "Efficient Subgraph Matching on Billion Node Graphs".

The package implements the paper's STwig-based, index-free distributed
subgraph matching algorithm on top of a simulated Trinity-style memory
cloud, plus the baselines, workloads, and benchmark harness needed to
regenerate the paper's evaluation.

Quickstart::

    from repro import ClusterConfig, MemoryCloud, SubgraphMatcher
    from repro.graph.generators import generate_rmat
    from repro.query import parse_query

    graph = generate_rmat(node_count=10_000, average_degree=8, label_density=0.01, seed=1)
    cloud = MemoryCloud.from_graph(graph, ClusterConfig(machine_count=4))
    matcher = SubgraphMatcher(cloud)
    query = parse_query(\"\"\"
        node u L1
        node v L2
        node w L3
        edge u v
        edge v w
        edge w u
    \"\"\")
    result = matcher.match(query, limit=1024)
    print(result.match_count, "matches")
"""

from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import ClusterConfig, NetworkModel
from repro.core.engine import SubgraphMatcher
from repro.core.planner import MatcherConfig, QueryPlan
from repro.core.result import MatchResult, MatchTable
from repro.errors import ReproError
from repro.graph.builder import GraphBuilder
from repro.graph.labeled_graph import LabeledGraph
from repro.query.parser import parse_query
from repro.query.query_graph import QueryGraph

__version__ = "1.0.0"

__all__ = [
    "LabeledGraph",
    "GraphBuilder",
    "QueryGraph",
    "parse_query",
    "MemoryCloud",
    "ClusterConfig",
    "NetworkModel",
    "SubgraphMatcher",
    "MatcherConfig",
    "QueryPlan",
    "MatchResult",
    "MatchTable",
    "ReproError",
    "__version__",
]
