"""Substrate benchmarks for the Section 2.2 / Section 3 claims.

* flat memory-blob cell storage vs. per-object storage (Trinity's
  heap-vs-trunk comparison);
* k-hop neighborhood exploration rate (the "3-hop neighborhood in under
  100 ms" claim that motivates index-free matching);
* STwig engine vs. naive backtracking exploration over the same cloud
  (the Section 3 exploration-vs-joins-vs-hybrid discussion);
* statistics-aware edge selection (the Section 1.3 extension).
"""

from __future__ import annotations

import statistics as pystats
import time

from repro.baselines.naive_exploration import naive_exploration_match
from repro.bench.harness import build_cloud, run_suite
from repro.cloud.blob_store import BlobCellStore, object_store_footprint_bytes
from repro.core.engine import SubgraphMatcher
from repro.core.planner import MatcherConfig
from repro.core.statistics import EdgeStatistics
from repro.workloads.datasets import DEFAULT_SEED, patents_small, rmat_graph, wordnet_small
from repro.workloads.suites import PAPER_RESULT_LIMIT, dfs_suite
from repro.utils.rng import ensure_rng

from conftest import save_rows


def test_blob_store_vs_object_store(benchmark, results_dir):
    """Reproduce the memory-trunk vs. heap-objects footprint comparison."""
    graph = rmat_graph()
    cells = [graph.cell(node) for node in graph.nodes()]

    def build_blob() -> BlobCellStore:
        blob = BlobCellStore()
        for cell in cells:
            blob.store_cell(cell.node_id, cell.label, cell.neighbors)
        return blob

    blob = benchmark(build_blob)
    object_bytes = object_store_footprint_bytes(cells)
    rows = [
        {
            "storage": "flat memory blob (Trinity trunk)",
            "payload_mb": round(blob.payload_bytes() / 1e6, 3),
            "total_mb": round(blob.footprint_bytes() / 1e6, 3),
        },
        {
            "storage": "per-object heap storage",
            "payload_mb": round(object_bytes / 1e6, 3),
            "total_mb": round(object_bytes / 1e6, 3),
        },
    ]
    save_rows(
        results_dir, "substrate_blob_store", rows,
        "Cell storage footprint: flat blob vs. per-object (Section 2.2)",
    )
    assert blob.footprint_bytes() < object_bytes


def test_three_hop_exploration_rate(benchmark, results_dir):
    """The paper's Trinity claim: 3-hop neighborhoods explored in ~0.1 s."""
    graph = rmat_graph()
    cloud = build_cloud(graph, machine_count=4)
    rng = ensure_rng(DEFAULT_SEED)
    starts = [rng.randrange(graph.node_count) for _ in range(20)]

    def explore_all():
        return [len(cloud.explore_neighborhood(start, hops=3)) for start in starts]

    sizes = benchmark(explore_all)
    timings = []
    for start in starts[:10]:
        begin = time.perf_counter()
        reached = cloud.explore_neighborhood(start, hops=3)
        timings.append((time.perf_counter() - begin, len(reached)))
    rows = [
        {
            "hops": 3,
            "explorations": len(sizes),
            "avg_nodes_reached": round(pystats.fmean(sizes), 1) if sizes else 0,
            "avg_ms_per_exploration": round(
                pystats.fmean(t for t, _ in timings) * 1000, 3
            ),
        }
    ]
    save_rows(
        results_dir, "substrate_three_hop_exploration", rows,
        "3-hop neighborhood exploration (Section 2.2 claim)",
    )
    assert sizes and min(sizes) >= 1


def test_stwig_vs_naive_exploration(benchmark, results_dir):
    """Section 3: the STwig hybrid vs. pure backtracking exploration."""
    graph = wordnet_small()
    suite = dfs_suite(graph, 6, batch_size=3, seed=31)
    cloud = build_cloud(graph, machine_count=4)
    matcher_config = MatcherConfig(max_stwig_leaves=3)

    def run_both():
        stwig = run_suite(
            cloud, suite, matcher_config=matcher_config,
            result_limit=PAPER_RESULT_LIMIT, label="STwig engine",
        )
        naive_cloud = build_cloud(graph, machine_count=4)
        naive_times = []
        naive_matches = 0
        for query in suite.queries:
            begin = time.perf_counter()
            found = naive_exploration_match(naive_cloud, query, limit=PAPER_RESULT_LIMIT)
            naive_times.append(time.perf_counter() - begin)
            naive_matches += len(found)
        return [
            stwig.as_row(),
            {
                "workload": "naive exploration",
                "queries": len(suite.queries),
                "avg_wall_ms": round(pystats.fmean(naive_times) * 1000, 3),
                "avg_sim_ms": round(pystats.fmean(naive_times) * 1000, 3),
                "avg_matches": round(naive_matches / len(suite.queries), 2),
                "avg_messages": "-",
            },
        ]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    save_rows(
        results_dir, "substrate_stwig_vs_naive", rows,
        "STwig engine vs. naive exploration (Section 3)",
    )
    assert len(rows) == 2


def test_statistics_aware_ordering(benchmark, results_dir):
    """The Section 1.3 extension: edge-statistics-guided decomposition."""
    graph = patents_small()
    stats = EdgeStatistics.from_graph(graph)
    suite = dfs_suite(graph, 8, batch_size=3, seed=41)

    def run_both():
        rows = []
        for label, config, statistics in [
            ("f-value only (paper)", MatcherConfig(), None),
            (
                "edge statistics",
                MatcherConfig(use_edge_statistics=True),
                stats,
            ),
        ]:
            cloud = build_cloud(graph, machine_count=4)
            matcher = SubgraphMatcher(cloud, config, statistics=statistics)
            wall = []
            intermediate = 0
            matches = 0
            for query in suite.queries:
                result = matcher.match(query, limit=PAPER_RESULT_LIMIT)
                wall.append(result.wall_seconds)
                intermediate += result.stats.stwig_result_rows
                matches += result.match_count
            rows.append(
                {
                    "ordering": label,
                    "avg_wall_ms": round(pystats.fmean(wall) * 1000, 2),
                    "stwig_rows": intermediate,
                    "matches": matches,
                }
            )
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    save_rows(
        results_dir, "substrate_statistics_ordering", rows,
        "Decomposition ordering: f-value vs. edge statistics (Section 1.3 extension)",
    )
    assert {row["ordering"] for row in rows} == {"f-value only (paper)", "edge statistics"}
    assert rows[0]["matches"] == rows[1]["matches"]
