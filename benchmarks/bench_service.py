"""The always-on query service under concurrent load.

The paper's engine answers a stream of concurrent queries against a
resident graph.  This benchmark stands up one
:class:`~repro.serve.service.QueryService` — graph loaded once, one shared
executor, one plan cache — and drives the same query mix twice:

* **solo** — one client, one query at a time: the latency baseline, and
  the per-query oracle for the parity check;
* **concurrent** — N client threads hammering ``submit`` together, with
  repeated rounds so recurring query shapes exercise the plan cache.

Two guarantees are verified before any number is reported:

* **Isolation parity** — every query's communication counters and match
  rows under concurrency are *identical* to its solo run.  Overlapping
  queries sharing one metrics sink (the bug this service's engine fix
  removed) would fail this immediately.
* **Plan-cache accounting** — across the whole run, cache hits + misses
  equals queries served, and every repeated fingerprint past its first
  execution is a hit.

The headline metric is ``concurrent_speedup`` — solo wall-clock over
concurrent wall-clock for the same total workload.  With the default
serial executor the work is GIL-bound Python/numpy, so the ratio sits
around 1.0 (the service must not make overlapping queries *slower* than
back-to-back ones); it is guarded with a conservative floor in
``quick_baselines.json``.

Run ``python benchmarks/bench_service.py`` for the full run (writes
``benchmarks/results/service.json``), or ``--quick`` for the CI-sized run
guarded by ``perf_guard.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from report_io import add_report_arguments, save_report

from repro.cloud.config import ClusterConfig, RuntimeConfig
from repro.graph.generators.power_law import generate_power_law
from repro.query.generators import dfs_query
from repro.serve import QueryService, ServiceConfig, ServiceRun, run_concurrent_clients

RESULTS_PATH = Path(__file__).parent / "results" / "service.json"

MACHINE_COUNT = 4
QUERY_NODES = 5
ROW_LIMIT = 4096

#: (node_count, degree, label_density, distinct_queries, clients, rounds)
FULL_SETUP = (60_000, 8, 1e-3, 12, 8, 4)
QUICK_SETUP = (12_000, 8, 2e-3, 6, 4, 3)


def build_workload(graph, count: int) -> List:
    """``count`` seeded DFS queries (deterministic, non-trivial answer sets)."""
    queries: List = []
    seed = 500
    while len(queries) < count and seed < 900:
        query = dfs_query(graph, QUERY_NODES, seed=seed)
        seed += 1
        queries.append(query)
    return queries


def per_query_view(run: ServiceRun) -> Dict[int, List]:
    """Map query index -> sorted ``(match_count, metrics)`` observations."""
    observed: Dict[int, List] = defaultdict(list)
    for record in run.records:
        observed[record.query_index].append(
            (record.match_count, tuple(sorted(record.metrics.items())))
        )
    return {index: sorted(obs) for index, obs in observed.items()}


def check_isolation_parity(solo: ServiceRun, concurrent: ServiceRun, rounds: int) -> None:
    """Every concurrent observation must equal the query's solo observation."""
    oracle = per_query_view(solo)
    observed = per_query_view(concurrent)
    if set(oracle) != set(observed):
        raise SystemExit(
            f"PARITY FAILURE: query coverage differs (solo {sorted(oracle)}, "
            f"concurrent {sorted(observed)})"
        )
    for index, solo_obs in oracle.items():
        expected = solo_obs * rounds
        if sorted(expected) != observed[index]:
            raise SystemExit(
                f"PARITY FAILURE: query {index} counters/rows under concurrency "
                f"differ from its solo run — per-query metrics isolation is broken"
            )


def check_plan_cache(service: QueryService, total_queries: int, distinct: int) -> Dict:
    """Exact plan-cache accounting over everything this service executed."""
    stats = service.stats()
    hits, misses = stats.plan_cache_hits, stats.plan_cache_misses
    if hits + misses != total_queries:
        raise SystemExit(
            f"PLAN CACHE FAILURE: {hits} hits + {misses} misses != "
            f"{total_queries} queries executed"
        )
    # Distinct fingerprints miss exactly once; every repeat is a hit.
    if misses != distinct:
        raise SystemExit(
            f"PLAN CACHE FAILURE: {misses} misses for {distinct} distinct "
            f"query fingerprints — repeated queries are not skipping planning"
        )
    return {"hits": hits, "misses": misses, "distinct_queries": distinct}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_report_arguments(parser)
    parser.add_argument(
        "--clients", type=int, default=None,
        help="concurrent client threads (default: setup-dependent, >= 4)",
    )
    parser.add_argument(
        "--executor", default=None,
        help="cluster runtime backend (default: REPRO_EXECUTOR env or serial)",
    )
    args = parser.parse_args(argv)

    nodes, degree, density, distinct, clients, rounds = (
        QUICK_SETUP if args.quick else FULL_SETUP
    )
    if args.clients is not None:
        clients = args.clients
    print(
        f"[service] {nodes:,}-node graph, {distinct} distinct queries x "
        f"{rounds} rounds, {clients} clients"
    )
    graph = generate_power_law(nodes, degree, label_density=density, seed=31)
    queries = build_workload(graph, distinct)
    runtime = RuntimeConfig(backend=args.executor)
    with QueryService(
        graph=graph,
        cluster_config=ClusterConfig(machine_count=MACHINE_COUNT),
        executor=runtime,
        service_config=ServiceConfig(max_in_flight=max(clients, 4)),
    ) as service:
        # Provision the runtime (pools, shm publication) outside the window.
        service.warm(queries[0])
        solo = run_concurrent_clients(service, queries, clients=1, limit=ROW_LIMIT)
        concurrent = run_concurrent_clients(
            service, queries, clients=clients, limit=ROW_LIMIT, rounds=rounds
        )
        if solo.errors or concurrent.errors:
            raise SystemExit(f"service errors: {solo.errors + concurrent.errors}")
        check_isolation_parity(solo, concurrent, rounds)
        total = 1 + len(solo.records) + len(concurrent.records)  # + warm-up
        cache = check_plan_cache(service, total, distinct)
        executor_name = service.matcher.executor.name
        final_stats = service.stats()

    solo_summary = solo.summary()
    concurrent_summary = concurrent.summary()
    # Same per-query work, so qps is comparable after normalizing by rounds:
    # solo did 1 pass over the mix, the concurrent window did `rounds`.
    concurrent_speedup = round(
        (solo_summary["wall_seconds"] * rounds) / concurrent_summary["wall_seconds"], 3
    )
    report = {
        "benchmark": "always-on query service: concurrent clients vs solo",
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "machine_count": MACHINE_COUNT,
        "executor": executor_name,
        "graph": {"nodes": nodes, "edges": graph.edge_count, "degree": degree},
        "workload": {
            "distinct_queries": distinct,
            "rounds": rounds,
            "row_limit": ROW_LIMIT,
            "rows_returned": final_stats.rows_returned,
        },
        "parity": (
            "per-query communication counters and match rows under concurrency "
            "verified identical to solo runs"
        ),
        "plan_cache": cache,
        "solo": solo_summary,
        "concurrent": concurrent_summary,
        "aggregate": {
            "clients": clients,
            "queries_per_second": concurrent_summary["queries_per_second"],
            "latency_p50_seconds": concurrent_summary["latency_p50_seconds"],
            "latency_p99_seconds": concurrent_summary["latency_p99_seconds"],
            "concurrent_speedup": concurrent_speedup,
        },
        "note": (
            "concurrent_speedup = solo wall / concurrent wall for the same "
            "total workload; GIL-bound with the serial executor, so ~1.0 is "
            "the expectation — the guard floor only catches the service "
            "serializing or slowing overlapping queries"
        ),
    }
    print(json.dumps(report["aggregate"], indent=2))
    save_report(report, RESULTS_PATH, no_save=args.no_save or args.quick, out=args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
