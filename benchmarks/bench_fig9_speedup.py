"""Figure 9 — speed-up vs. machine count (DFS and random queries).

A single Python process cannot show real parallel speed-up, so the reported
series is the *simulated* cluster time: per-machine compute divided by the
machine count plus the (growing) communication cost — the same quantity the
paper's curves capture qualitatively (speed-up that is significant but
sub-linear).
"""

from __future__ import annotations

from repro.bench.experiments import BENCH_MATCHER_CONFIG, figure9_speedup
from repro.bench.harness import build_cloud, run_suite
from repro.workloads.datasets import patents_small
from repro.workloads.suites import PAPER_RESULT_LIMIT, dfs_suite

from conftest import save_rows

MACHINE_COUNTS = (1, 2, 4, 8)


def test_figure9a_speedup_dfs(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: figure9_speedup(kind="dfs", machine_counts=MACHINE_COUNTS, batch_size=3),
        rounds=1, iterations=1,
    )
    save_rows(
        results_dir, "figure9a_speedup_dfs", rows,
        "Figure 9(a): simulated run time vs. machine count (DFS queries)",
    )
    assert [row["machines"] for row in rows] == list(MACHINE_COUNTS)
    # More machines must reduce the simulated time on the heavier workload
    # (WordNet-like, unselective labels), as in the paper's Figure 9(a)...
    assert rows[-1]["wordnet_sim_ms"] < rows[0]["wordnet_sim_ms"]
    # ...while the speed-up stays bounded (communication does not shrink).
    assert rows[-1]["wordnet_sim_ms"] > rows[0]["wordnet_sim_ms"] / 32


def test_figure9b_speedup_random(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: figure9_speedup(kind="random", machine_counts=MACHINE_COUNTS, batch_size=3),
        rounds=1, iterations=1,
    )
    save_rows(
        results_dir, "figure9b_speedup_random", rows,
        "Figure 9(b): simulated run time vs. machine count (random queries)",
    )
    assert [row["machines"] for row in rows] == list(MACHINE_COUNTS)


def test_figure9_query_batch_8_machines(benchmark):
    """Wall-clock of one DFS batch on an 8-machine cloud (load comparison point)."""
    graph = patents_small()
    cloud = build_cloud(graph, machine_count=8)
    suite = dfs_suite(graph, 6, batch_size=3, seed=12)
    measurement = benchmark(
        lambda: run_suite(
            cloud, suite, matcher_config=BENCH_MATCHER_CONFIG,
            result_limit=PAPER_RESULT_LIMIT,
        )
    )
    assert measurement.query_count == 3
