"""Regenerate the checked-in co-authorship edge-list slice.

``coauthor_5k.edges`` is a deterministic ~5k-node co-authorship graph with
sparse 64-bit hash IDs — the shape of a real scraped dataset (DBLP-style
author keys hashed to fixed-width integers, with the huge gaps that defeat
any dense-array fast path keyed on raw IDs).  The model: papers draw 2-5
authors from a Zipf-skewed author pool and every author pair on a paper is
a co-authorship edge, so the graph has the heavy-tailed degrees and
triangle-dense neighborhoods motif queries care about.

The file is committed; this script exists so the slice is reproducible
(and auditable) rather than an opaque blob:

    python benchmarks/data/make_coauthor_slice.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

OUT_PATH = Path(__file__).parent / "coauthor_5k.edges"

AUTHOR_COUNT = 5_000
PAPER_COUNT = 6_000
SEED = 20120817  # VLDB 2012 week, for flavor
ZIPF_EXPONENT = 0.85


def splitmix64(values: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit mix, masked to non-negative int64."""
    x = values.astype(np.uint64)
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & np.uint64(
        0xFFFFFFFFFFFFFFFF
    )
    x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & np.uint64(
        0xFFFFFFFFFFFFFFFF
    )
    x = x ^ (x >> np.uint64(31))
    return (x & np.uint64(0x7FFFFFFFFFFFFFFF)).astype(np.int64)


def main() -> None:
    rng = np.random.RandomState(SEED)
    # Zipf-skewed author popularity: a few prolific authors, a long tail.
    weights = 1.0 / np.arange(1, AUTHOR_COUNT + 1) ** ZIPF_EXPONENT
    weights /= weights.sum()

    pairs = set()
    for _ in range(PAPER_COUNT):
        team = rng.choice(AUTHOR_COUNT, size=rng.randint(2, 6), p=weights)
        team = sorted(set(team.tolist()))
        for i, u in enumerate(team):
            for v in team[i + 1 :]:
                pairs.add((u, v))

    # Authors the paper model never drew become one-paper authors: each
    # co-authors once with a drawn author, so the slice covers the full pool.
    drawn = {u for pair in pairs for u in pair}
    missing = [u for u in range(AUTHOR_COUNT) if u not in drawn]
    advisors = rng.choice(sorted(drawn), size=len(missing))
    for u, advisor in zip(missing, advisors.tolist()):
        pairs.add((min(u, advisor), max(u, advisor)))

    edges = np.array(sorted(pairs), dtype=np.int64)
    hashed = splitmix64(np.arange(AUTHOR_COUNT))
    src, dst = hashed[edges[:, 0]], hashed[edges[:, 1]]

    used = np.unique(edges)
    with OUT_PATH.open("w", encoding="utf-8") as fh:
        fh.write(
            "# synthetic co-authorship slice: "
            f"{len(used)} authors, {len(edges)} co-author pairs\n"
            "# 64-bit hash IDs; regenerate with make_coauthor_slice.py\n"
        )
        for a, b in zip(src.tolist(), dst.tolist()):
            fh.write(f"{a}\t{b}\n")
    print(f"wrote {OUT_PATH}: {len(used)} authors, {len(edges)} edges")


if __name__ == "__main__":
    main()
