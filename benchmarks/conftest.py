"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures: it runs
the corresponding experiment driver from :mod:`repro.bench.experiments`,
saves the rows under ``benchmarks/results/``, prints them (visible with
``pytest -s``), and wraps one representative operation with the
``pytest-benchmark`` fixture so ``--benchmark-only`` also reports stable
timing statistics.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Sequence

import pytest

from repro.bench.reporting import format_table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where rendered experiment tables are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def save_rows(
    results_dir: Path, name: str, rows: Sequence[Dict[str, object]], title: str
) -> str:
    """Render ``rows`` as a text table, save it, print it, and return the text."""
    text = format_table(list(rows), title=title)
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")
    return text
