"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures: it runs
the corresponding experiment driver from :mod:`repro.bench.experiments`,
saves the rows under ``benchmarks/results/``, prints them (visible with
``pytest -s``), and wraps one representative operation with the
``pytest-benchmark`` fixture so ``--benchmark-only`` also reports stable
timing statistics.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, Sequence, Tuple

import pytest

from repro.bench.reporting import format_table
from repro.storage.cache import cached_graph, default_cache_dir

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where rendered experiment tables are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def dataset_cache() -> Path:
    """Snapshot cache directory shared by every benchmark in the session.

    Defaults to ``benchmarks/.dataset_cache`` (gitignored); set
    ``REPRO_DATASET_CACHE`` to relocate it, e.g. onto a CI cache volume.
    """
    return default_cache_dir(os.environ.get("REPRO_DATASET_CACHE"))


def cached_dataset(
    cache_dir: Path, name: str, factory: Callable[[], object]
) -> Tuple[object, Dict[str, object]]:
    """Open benchmark dataset ``name`` from the snapshot cache (see
    :func:`repro.storage.cache.cached_graph`), printing how it was obtained
    so ``pytest -s`` shows open-vs-generate time per dataset."""
    graph, info = cached_graph(cache_dir, name, factory)
    if info["source"] == "snapshot":
        print(f"[dataset {name}: reopened snapshot in {info['open_seconds']:.3f}s]")
    else:
        print(
            f"[dataset {name}: generated in {info['generate_seconds']:.3f}s, "
            f"snapshot saved in {info['save_seconds']:.3f}s]"
        )
    return graph, info


def save_rows(
    results_dir: Path, name: str, rows: Sequence[Dict[str, object]], title: str
) -> str:
    """Render ``rows`` as a text table, save it, print it, and return the text."""
    text = format_table(list(rows), title=title)
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")
    return text
