"""Columnar join engine vs. the tuple-row baseline, head to head.

Before this engine, ``MatchTable`` was a list of Python tuples and
``hash_join`` a per-row dict probe, so the paper's step 3 (STwig joining
with cost-based ordering and pipelined early stop) ran at Python speed and
dominated high-match queries.  The columnar engine stores every table as
one 2-D ``NODE_DTYPE`` array and rewrites the join phase as
sort/``searchsorted`` equi-joins with vectorized injectivity masks.

This benchmark quantifies the difference on the workload shape where it
matters — few labels, many matches:

* **Join-phase speed** — the exploration phase runs once per query; the
  join/assembly phase is then executed twice over the identical per-machine
  STwig tables: once with a faithful re-implementation of the tuple-row
  baseline (list-of-tuples tables, per-row dict-probe hash join, analytic
  join ordering, project-based normalization), once with the columnar
  engine.  Result tables are verified row-for-row equal (canonical order),
  and the engine's answers are cross-validated against VF2 on a suite of
  small seeded graphs.
* **Early-stop scaling** — the same join phase with ``limit=1024`` on a
  query with far more matches, for both engines.  The columnar engine
  pushes the remaining budget into the final join stage of each block, so
  its limited join time scales with the limit; the baseline (faithful to
  the seed's dead ``remaining_limit = None``) joins every block in full and
  truncates after.

Run ``python benchmarks/bench_join_engine.py`` for the paper-scale
comparison (writes ``benchmarks/results/join_engine.json``), or
``--quick`` for a CI-sized smoke run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from report_io import add_report_arguments, save_report

from repro.baselines.vf2 import vf2_match
from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import ClusterConfig
from repro.core.distributed import assemble_results
from repro.core.engine import SubgraphMatcher
from repro.core.exploration import ExplorationOutcome, explore
from repro.core.planner import MatcherConfig, QueryPlan, QueryPlanner
from repro.graph.generators.erdos_renyi import generate_gnm
from repro.graph.generators.power_law import generate_power_law
from repro.query.generators import dfs_query

RESULTS_PATH = Path(__file__).parent / "results" / "join_engine.json"


# --------------------------------------------------------------------------
# Faithful re-implementation of the tuple-row baseline: list-of-tuples
# tables, per-row dict-probe hash join, analytic-only join ordering, and the
# seed's join loop (including the dead `remaining_limit = None`, so limited
# queries join every block in full and truncate afterwards).
# --------------------------------------------------------------------------


class TupleTable:
    """The pre-columnar MatchTable: columns plus a list of Python tuples."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Tuple[str, ...], rows=()) -> None:
        self.columns = tuple(columns)
        self.rows: List[Tuple[int, ...]] = list(rows)

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @property
    def width(self) -> int:
        return len(self.columns)

    def column_index(self, column: str) -> int:
        return self.columns.index(column)

    def column_values(self, column: str) -> set:
        index = self.column_index(column)
        return {row[index] for row in self.rows}

    def project(self, columns: Tuple[str, ...]) -> "TupleTable":
        indices = [self.column_index(c) for c in columns]
        seen = set()
        projected: List[Tuple[int, ...]] = []
        for row in self.rows:
            key = tuple(row[i] for i in indices)
            if key not in seen:
                seen.add(key)
                projected.append(key)
        return TupleTable(columns, projected)

    def union(self, other: "TupleTable") -> "TupleTable":
        return TupleTable(self.columns, [*self.rows, *other.rows])

    def copy(self) -> "TupleTable":
        return TupleTable(self.columns, list(self.rows))


def tuple_hash_join(
    left: TupleTable,
    right: TupleTable,
    enforce_injective: bool = True,
    row_limit: Optional[int] = None,
) -> TupleTable:
    """The baseline equi-join: a Python dict build + per-row probe loop."""
    shared = [column for column in left.columns if column in right.columns]
    right_extra = [column for column in right.columns if column not in shared]
    out_columns = (*left.columns, *right_extra)
    result = TupleTable(out_columns)

    build, probe, build_is_left = (
        (left, right, True) if left.row_count <= right.row_count else (right, left, False)
    )
    build_key_idx = [build.column_index(c) for c in shared]
    probe_key_idx = [probe.column_index(c) for c in shared]
    buckets: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
    for row in build.rows:
        key = tuple(row[i] for i in build_key_idx)
        buckets.setdefault(key, []).append(row)

    left_idx = [left.column_index(c) for c in left.columns]
    right_extra_idx = [right.column_index(c) for c in right_extra]

    for probe_row in probe.rows:
        key = tuple(probe_row[i] for i in probe_key_idx)
        for build_row in buckets.get(key, ()):
            left_row = build_row if build_is_left else probe_row
            right_row = probe_row if build_is_left else build_row
            combined = tuple(left_row[i] for i in left_idx) + tuple(
                right_row[i] for i in right_extra_idx
            )
            if enforce_injective and len(set(combined)) != len(combined):
                continue
            result.rows.append(combined)
            if row_limit is not None and result.row_count >= row_limit:
                return result
    return result


def tuple_select_join_order(tables: Sequence[TupleTable]) -> List[int]:
    """The baseline greedy ordering (analytic estimates only)."""
    if not tables:
        return []
    remaining = list(range(len(tables)))
    start = min(remaining, key=lambda i: tables[i].row_count)
    order = [start]
    remaining.remove(start)
    current_columns = set(tables[start].columns)
    current_size = float(tables[start].row_count)
    while remaining:
        connected = [i for i in remaining if current_columns & set(tables[i].columns)]
        candidates = connected or remaining
        best_index, best_estimate = None, float("inf")
        for index in candidates:
            right = tables[index]
            estimate = current_size * right.row_count
            for column in right.columns:
                if column in current_columns:
                    estimate /= max(1, len(right.column_values(column)))
            if estimate < best_estimate:
                best_estimate, best_index = estimate, index
        order.append(best_index)
        remaining.remove(best_index)
        current_columns.update(tables[best_index].columns)
        current_size = max(1.0, best_estimate)
    return order


def tuple_multiway_join(
    tables: Sequence[TupleTable],
    row_limit: Optional[int] = None,
    block_size: Optional[int] = 1024,
) -> TupleTable:
    """The baseline pipelined join — blocks joined in full, truncated after."""
    if len(tables) == 1:
        table = tables[0].copy()
        if row_limit is not None and table.row_count > row_limit:
            table.rows = table.rows[:row_limit]
        return table
    order = tuple_select_join_order(tables)
    lead = tables[order[0]]
    rest = [tables[i] for i in order[1:]]
    final_columns: Tuple[str, ...] = lead.columns
    for table in rest:
        final_columns = (*final_columns, *(c for c in table.columns if c not in final_columns))
    result = TupleTable(final_columns)
    if block_size is None or lead.row_count <= block_size:
        blocks = [lead]
    else:
        blocks = [
            TupleTable(lead.columns, lead.rows[start : start + block_size])
            for start in range(0, lead.row_count, block_size)
        ]
    for block in blocks:
        partial: TupleTable = block
        for table in rest:
            # Faithful to the seed bug: the limit never reaches the stages.
            partial = tuple_hash_join(partial, table, row_limit=None)
            if partial.row_count == 0:
                break
        if partial.row_count and partial.columns != final_columns:
            partial = partial.project(final_columns)
        for row in partial.rows:
            result.rows.append(row)
            if row_limit is not None and result.row_count >= row_limit:
                return result
    return result


def tuple_filter_by_bindings(table: TupleTable, bindings) -> TupleTable:
    candidate_sets = [
        (index, bindings.candidates(column))
        for index, column in enumerate(table.columns)
        if bindings.candidates(column) is not None
    ]
    if not candidate_sets or table.row_count == 0:
        return table
    kept = [
        row
        for row in table.rows
        if all(row[index] in candidates for index, candidates in candidate_sets)
    ]
    if len(kept) == table.row_count:
        return table
    return TupleTable(table.columns, kept)


def tuple_assemble(
    plan: QueryPlan,
    exploration_tables: List[List[TupleTable]],
    bindings,
    machine_count: int,
    result_limit: Optional[int] = None,
) -> TupleTable:
    """The baseline distributed join loop (gather, filter, join, project)."""
    config = plan.config
    final_columns = plan.query.nodes()
    final = TupleTable(final_columns)
    for machine_id in range(machine_count):
        remaining = None if result_limit is None else result_limit - final.row_count
        if remaining is not None and remaining <= 0:
            break
        machine_tables: List[TupleTable] = []
        for stwig_index in range(len(plan.stwigs)):
            local = exploration_tables[machine_id][stwig_index]
            if stwig_index == plan.head_index:
                machine_tables.append(local)
                continue
            combined = local.copy()
            for remote_machine in sorted(plan.load_set(machine_id, stwig_index)):
                remote = exploration_tables[remote_machine][stwig_index]
                if remote.row_count:
                    combined = combined.union(remote)
            machine_tables.append(combined)
        if config.use_final_binding_filter:
            machine_tables = [
                tuple_filter_by_bindings(table, bindings) for table in machine_tables
            ]
        if any(table.row_count == 0 for table in machine_tables):
            continue
        joined = tuple_multiway_join(
            machine_tables, row_limit=remaining, block_size=config.block_size
        )
        if joined.row_count == 0:
            continue
        normalized = joined.project(final_columns)
        for row in normalized.rows:
            final.rows.append(row)
            if result_limit is not None and final.row_count >= result_limit:
                return final
    return final


# --------------------------------------------------------------------------
# Benchmark driver
# --------------------------------------------------------------------------


def to_tuple_tables(exploration: ExplorationOutcome) -> List[List[TupleTable]]:
    """Snapshot the columnar exploration tables as baseline tuple tables."""
    return [
        [TupleTable(table.columns, table.rows) for table in machine_tables]
        for machine_tables in exploration.tables
    ]


def timed(fn, repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def canonical(rows) -> List[Tuple[int, ...]]:
    return sorted(tuple(row) for row in rows)


def run_join_comparison(quick: bool) -> Dict[str, object]:
    node_count = 2_000 if quick else 20_000
    average_degree = 6.0
    # Few labels relative to nodes -> high-match queries (the workload shape
    # where the join phase dominates).
    label_density = 4e-3 if quick else 5e-4
    machine_count = 4
    query_sizes = (4,) if quick else (4, 5)
    seeds = range(4) if quick else range(8)
    repeats = 1 if quick else 3

    graph = generate_power_law(
        node_count, average_degree, label_density=label_density, seed=13
    )
    cloud = MemoryCloud.from_graph(graph, ClusterConfig(machine_count=machine_count))
    config = MatcherConfig()
    planner = QueryPlanner(cloud, config)

    per_query: List[Dict[str, object]] = []
    biggest: Optional[Dict[str, object]] = None
    for size in query_sizes:
        for seed in seeds:
            query = dfs_query(graph, size, seed=seed)
            plan = planner.plan(query)
            exploration = explore(cloud, plan)
            if exploration.empty:
                continue
            tuple_tables = to_tuple_tables(exploration)

            tuple_seconds, tuple_result = timed(
                lambda: tuple_assemble(
                    plan, tuple_tables, exploration.bindings, machine_count
                ),
                repeats,
            )
            columnar_seconds, outcome = timed(
                lambda: assemble_results(cloud, plan, exploration), repeats
            )
            new_rows = canonical(outcome.table.rows)
            old_rows = canonical(tuple_result.rows)
            if new_rows != old_rows:
                raise SystemExit(
                    f"ROW MISMATCH on query size={size} seed={seed}: "
                    f"{len(new_rows)} columnar vs {len(old_rows)} tuple rows"
                )
            if len(new_rows) == 0:
                continue
            entry = {
                "query_size": size,
                "seed": seed,
                "stwigs": len(plan.stwigs),
                "stwig_result_rows": exploration.total_rows(),
                "matches": len(new_rows),
                "tuple_join_seconds": round(tuple_seconds, 6),
                "columnar_join_seconds": round(columnar_seconds, 6),
                "speedup": round(tuple_seconds / max(columnar_seconds, 1e-9), 2),
                "rows_equal": True,
            }
            per_query.append(entry)
            if biggest is None or entry["matches"] > biggest["entry"]["matches"]:
                biggest = {"entry": entry, "plan": plan, "exploration": exploration,
                           "tuple_tables": tuple_tables}

    tuple_total = sum(q["tuple_join_seconds"] for q in per_query)
    columnar_total = sum(q["columnar_join_seconds"] for q in per_query)
    aggregate = {
        "queries": len(per_query),
        "total_matches": sum(q["matches"] for q in per_query),
        "tuple_join_seconds": round(tuple_total, 4),
        "columnar_join_seconds": round(columnar_total, 4),
        "speedup": round(tuple_total / max(columnar_total, 1e-9), 2),
    }

    # -- early-stop scaling on the highest-match query ----------------------
    limited = {}
    if biggest is not None and biggest["entry"]["matches"] > 2048:
        plan = biggest["plan"]
        exploration = biggest["exploration"]
        tuple_tables = biggest["tuple_tables"]
        limit = 1024
        columnar_full, _ = timed(
            lambda: assemble_results(cloud, plan, exploration), repeats
        )
        columnar_limited, outcome = timed(
            lambda: assemble_results(cloud, plan, exploration, result_limit=limit),
            repeats,
        )
        # Limit-scaling sweep: with the budget pushed into the final join
        # stage, time should track the limit, not the match count.
        scaling = []
        for sweep_limit in (256, 1024, 4096):
            sweep_seconds, sweep_outcome = timed(
                lambda: assemble_results(
                    cloud, plan, exploration, result_limit=sweep_limit
                ),
                repeats,
            )
            scaling.append(
                {
                    "limit": sweep_limit,
                    "rows": sweep_outcome.table.row_count,
                    "columnar_seconds": round(sweep_seconds, 6),
                }
            )
        tuple_full, _ = timed(
            lambda: tuple_assemble(
                plan, tuple_tables, exploration.bindings, machine_count
            ),
            repeats,
        )
        tuple_limited, _ = timed(
            lambda: tuple_assemble(
                plan, tuple_tables, exploration.bindings, machine_count,
                result_limit=limit,
            ),
            repeats,
        )
        limited = {
            "matches": biggest["entry"]["matches"],
            "limit": limit,
            "limited_rows": outcome.table.row_count,
            "truncated": outcome.truncated,
            "columnar_full_seconds": round(columnar_full, 6),
            "columnar_limited_seconds": round(columnar_limited, 6),
            "columnar_limited_speedup_vs_full": round(
                columnar_full / max(columnar_limited, 1e-9), 2
            ),
            "tuple_full_seconds": round(tuple_full, 6),
            "tuple_limited_seconds": round(tuple_limited, 6),
            "tuple_limited_speedup_vs_full": round(
                tuple_full / max(tuple_limited, 1e-9), 2
            ),
            "limit_scaling": scaling,
        }

    return {
        "workload": {
            "node_count": node_count,
            "average_degree": average_degree,
            "label_density": label_density,
            "machine_count": machine_count,
            "query_sizes": list(query_sizes),
            "seeds": len(list(seeds)),
        },
        "per_query": per_query,
        "aggregate": aggregate,
        "limited": limited,
    }


def run_cross_validation(quick: bool) -> Dict[str, object]:
    """Engine answers (through the columnar join) vs VF2 on small graphs."""
    cases = 0
    for seed in range(3 if quick else 6):
        graph = generate_gnm(80, 220, label_count=3, seed=seed)
        cloud = MemoryCloud.from_graph(graph, ClusterConfig(machine_count=3))
        matcher = SubgraphMatcher(cloud)
        for size in (3, 4):
            query = dfs_query(graph, size, seed=seed + 100)
            expected = canonical(
                tuple(match[node] for node in query.nodes())
                for match in vf2_match(graph, query)
            )
            got = canonical(matcher.match(query).rows)
            if got != expected:
                raise SystemExit(
                    f"VF2 MISMATCH on gnm seed={seed} size={size}: "
                    f"{len(got)} engine vs {len(expected)} VF2 matches"
                )
            cases += 1
    return {"cases": cases, "all_equal": True}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_report_arguments(parser)
    args = parser.parse_args(argv)

    report = run_join_comparison(quick=args.quick)
    report["cross_validation"] = run_cross_validation(quick=args.quick)
    report["mode"] = "quick" if args.quick else "full"

    aggregate = report["aggregate"]
    print(
        f"join phase over {aggregate['queries']} queries "
        f"({aggregate['total_matches']} matches): "
        f"tuple {aggregate['tuple_join_seconds']}s vs "
        f"columnar {aggregate['columnar_join_seconds']}s "
        f"-> {aggregate['speedup']}x"
    )
    if report["limited"]:
        limited = report["limited"]
        print(
            f"limit={limited['limit']} on {limited['matches']}-match query: "
            f"columnar {limited['columnar_limited_seconds']}s "
            f"({limited['columnar_limited_speedup_vs_full']}x vs full), "
            f"tuple {limited['tuple_limited_seconds']}s "
            f"({limited['tuple_limited_speedup_vs_full']}x vs full)"
        )
    print(f"cross-validation vs VF2: {report['cross_validation']['cases']} cases equal")

    save_report(report, RESULTS_PATH, no_save=args.no_save, out=args.out)

    if aggregate["speedup"] < 2.0 and not args.quick:
        print("WARNING: aggregate join speedup below 2x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
