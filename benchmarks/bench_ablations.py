"""Ablation benchmarks for the Section 5 design choices (beyond the paper's figures).

* each query optimization disabled in turn (decomposition/ordering, binding
  filter, head selection, load-set pruning);
* pipelined-join block size sweep;
* STwig exploration vs. the edge-index join baseline (the Section 3
  exploration-vs-joins discussion, measured).
"""

from __future__ import annotations

from repro.baselines.edge_join import EdgeIndex, edge_join_match
from repro.bench.experiments import ablation_block_size, ablation_optimizations
from repro.bench.harness import build_cloud, run_baseline, run_suite
from repro.workloads.datasets import patents_small
from repro.workloads.suites import PAPER_RESULT_LIMIT, dfs_suite

from conftest import save_rows


def test_ablation_optimizations(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: ablation_optimizations(batch_size=3), rounds=1, iterations=1
    )
    save_rows(
        results_dir, "ablation_optimizations", rows,
        "Ablation: Section 5 optimizations disabled one at a time",
    )
    variants = {row["variant"] for row in rows}
    assert "full (paper)" in variants and len(variants) == 5


def test_ablation_block_size(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: ablation_block_size(batch_size=3), rounds=1, iterations=1
    )
    save_rows(
        results_dir, "ablation_block_size", rows,
        "Ablation: pipelined join block size",
    )
    assert len(rows) == 5


def test_exploration_vs_edge_join(benchmark, results_dir):
    """Section 3's discussion, measured: STwig exploration vs. edge-index joins."""
    graph = patents_small()
    suite = dfs_suite(graph, 6, batch_size=3, seed=17)
    cloud = build_cloud(graph, machine_count=1)

    def run_both():
        stwig = run_suite(cloud, suite, result_limit=PAPER_RESULT_LIMIT, label="STwig exploration")
        index = EdgeIndex(graph)
        join = run_baseline(
            graph,
            suite.queries,
            lambda g, q, limit=None: edge_join_match(g, q, index=index, limit=limit),
            label="edge-index join",
            result_limit=PAPER_RESULT_LIMIT,
        )
        return [stwig.as_row(), join.as_row()]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    save_rows(
        results_dir, "ablation_exploration_vs_join", rows,
        "Exploration vs. edge-index joins (same queries, same result limit)",
    )
    assert len(rows) == 2
