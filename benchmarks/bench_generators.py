"""Vectorized vs. scalar graph generation, head to head.

Before this change every synthetic generator was a pure-Python per-edge
sampler: one binary search per Chung–Lu endpoint, one ``rng.random()`` per
R-MAT recursion level, one Python set probe per candidate edge, and one
``GraphBuilder.add_edge`` call per accepted edge — which capped every
benchmark graph at ~100k nodes.  The array-native generators draw endpoints
in edge-sized numpy blocks, reject self-loops/duplicates vectorized, and
bulk-ingest through ``LabeledGraph.from_arrays`` (one sort + one unique for
the whole CSR build).

This benchmark measures the speedup and verifies the rewrite is a faithful
sampler:

* **Generation speed** — scalar vs. vectorized Chung–Lu power-law and
  R-MAT at the same parameters (1M nodes in full mode, the scale the
  paper's Table 2 sweep starts at).
* **Seeded parity** — same-seed runs are deterministic, the degree-sequence
  summary statistics of scalar and vectorized graphs agree within
  tolerance, and the label distributions match.
* **Bulk ingest** — ``LabeledGraph.from_arrays`` vs. the per-edge
  ``GraphBuilder.add_edge`` loop over the identical edge set.

Run ``python benchmarks/bench_generators.py`` for the full 1M-node
comparison (writes ``benchmarks/results/generators.json``), or ``--quick``
for a CI-sized smoke run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from report_io import add_report_arguments, save_report

from repro.graph.builder import GraphBuilder
from repro.graph.generators.power_law import (
    generate_power_law,
    generate_power_law_scalar,
)
from repro.graph.generators.rmat import generate_rmat, generate_rmat_scalar
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.stats import compute_stats, degree_summary, generation_report

RESULTS_PATH = Path(__file__).parent / "results" / "generators.json"

#: (name, vectorized, scalar) generator pairs compared head to head.
MODELS: Sequence[Tuple[str, Callable, Callable]] = (
    ("power_law", generate_power_law, generate_power_law_scalar),
    ("rmat", generate_rmat, generate_rmat_scalar),
)


def timed(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"PARITY FAILURE: {message}")


def verify_parity(name: str, fast: LabeledGraph, reference: LabeledGraph) -> Dict[str, object]:
    """Degree/label parity between the vectorized and scalar graphs."""
    check(
        fast.node_count == reference.node_count,
        f"{name}: node counts differ ({fast.node_count} vs {reference.node_count})",
    )
    check(
        abs(fast.edge_count - reference.edge_count) <= 0.02 * reference.edge_count,
        f"{name}: edge counts differ beyond 2% "
        f"({fast.edge_count} vs {reference.edge_count})",
    )
    fast_degrees = degree_summary(fast)
    reference_degrees = degree_summary(reference)
    check(
        abs(fast_degrees["mean"] - reference_degrees["mean"])
        <= 0.05 * max(reference_degrees["mean"], 1e-9),
        f"{name}: mean degree differs beyond 5% ({fast_degrees} vs {reference_degrees})",
    )
    check(
        abs(fast_degrees["p90"] - reference_degrees["p90"])
        <= max(2.0, 0.25 * reference_degrees["p90"]),
        f"{name}: p90 degree differs beyond tolerance "
        f"({fast_degrees} vs {reference_degrees})",
    )
    ratio = fast_degrees["max"] / max(reference_degrees["max"], 1.0)
    check(
        0.3 <= ratio <= 3.0,
        f"{name}: hub degrees differ beyond 3x ({fast_degrees} vs {reference_degrees})",
    )
    check(
        fast.distinct_labels() == reference.distinct_labels(),
        f"{name}: distinct label sets differ",
    )
    return {
        "degree_summary_vectorized": {k: round(v, 3) for k, v in fast_degrees.items()},
        "degree_summary_scalar": {
            k: round(v, 3) for k, v in reference_degrees.items()
        },
        "distinct_labels_equal": True,
    }


def verify_determinism(name: str, generate: Callable, node_count: int, degree: float,
                       label_density: float, seed: int) -> None:
    first = generate(node_count, degree, label_density=label_density, seed=seed)
    second = generate(node_count, degree, label_density=label_density, seed=seed)
    check(
        np.array_equal(first.neighbor_array(), second.neighbor_array())
        and np.array_equal(first.offset_array(), second.offset_array())
        and np.array_equal(first.label_id_array(), second.label_id_array()),
        f"{name}: same-seed runs are not identical",
    )


def run_generation_comparison(quick: bool) -> Dict[str, object]:
    node_count = 50_000 if quick else 1_000_000
    average_degree = 8.0
    label_density = 1e-3
    seed = 20120827
    vector_repeats = 3 if quick else 2

    per_model: List[Dict[str, object]] = []
    for name, vectorized, scalar in MODELS:
        scalar_seconds, reference = timed(
            lambda: scalar(
                node_count, average_degree, label_density=label_density, seed=seed
            ),
            repeats=1,
        )
        vector_seconds, fast = timed(
            lambda: vectorized(
                node_count, average_degree, label_density=label_density, seed=seed
            ),
            repeats=vector_repeats,
        )
        verify_determinism(name, vectorized, node_count, average_degree,
                           label_density, seed)
        parity = verify_parity(name, fast, reference)
        report = generation_report(fast)
        entry = {
            "model": name,
            "nodes": node_count,
            "edges": fast.edge_count,
            "target_edges": report.target_edges,
            "achieved_ratio": round(report.achieved_ratio, 4),
            "sampling_rounds": report.sampling_rounds,
            "scalar_seconds": round(scalar_seconds, 4),
            "vectorized_seconds": round(vector_seconds, 4),
            "speedup": round(scalar_seconds / max(vector_seconds, 1e-9), 2),
            "parity": parity,
            "deterministic": True,
        }
        per_model.append(entry)
        print(
            f"{name}: {node_count} nodes scalar {entry['scalar_seconds']}s vs "
            f"vectorized {entry['vectorized_seconds']}s -> {entry['speedup']}x "
            f"(degree/label parity ok)"
        )

    scalar_total = sum(m["scalar_seconds"] for m in per_model)
    vector_total = sum(m["vectorized_seconds"] for m in per_model)
    return {
        "workload": {
            "node_count": node_count,
            "average_degree": average_degree,
            "label_density": label_density,
            "seed": seed,
        },
        "per_model": per_model,
        "aggregate": {
            "scalar_seconds": round(scalar_total, 4),
            "vectorized_seconds": round(vector_total, 4),
            "speedup": round(scalar_total / max(vector_total, 1e-9), 2),
        },
    }


def run_ingest_comparison(quick: bool) -> Dict[str, object]:
    """Per-edge GraphBuilder loop vs. from_arrays over the identical edges."""
    node_count = 50_000 if quick else 500_000
    graph = generate_power_law(node_count, 8.0, label_density=1e-3, seed=3)
    node_ids = graph.node_id_array()
    label_ids = graph.label_id_array()
    table = graph.label_table
    edges = np.array(list(graph.edges()), dtype=np.int64)
    labels = graph.labels()

    def per_edge() -> LabeledGraph:
        builder = GraphBuilder()
        builder.add_nodes(labels)
        for u, v in edges.tolist():
            builder.add_edge(u, v)
        return builder.build()

    def bulk() -> LabeledGraph:
        return LabeledGraph.from_arrays(
            table, node_ids, label_ids, edges[:, 0], edges[:, 1], assume_unique=True
        )

    per_edge_seconds, slow_graph = timed(per_edge, repeats=1)
    bulk_seconds, fast_graph = timed(bulk, repeats=3 if quick else 2)
    check(
        np.array_equal(slow_graph.neighbor_array(), fast_graph.neighbor_array())
        and np.array_equal(slow_graph.offset_array(), fast_graph.offset_array()),
        "bulk ingest: CSR arrays differ from the per-edge build",
    )
    result = {
        "nodes": node_count,
        "edges": int(graph.edge_count),
        "per_edge_seconds": round(per_edge_seconds, 4),
        "bulk_seconds": round(bulk_seconds, 4),
        "speedup": round(per_edge_seconds / max(bulk_seconds, 1e-9), 2),
        "csr_equal": True,
    }
    print(
        f"bulk ingest: {result['edges']} edges per-edge {result['per_edge_seconds']}s "
        f"vs from_arrays {result['bulk_seconds']}s -> {result['speedup']}x"
    )
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_report_arguments(parser)
    args = parser.parse_args(argv)

    report = run_generation_comparison(quick=args.quick)
    report["bulk_ingest"] = run_ingest_comparison(quick=args.quick)
    report["mode"] = "quick" if args.quick else "full"

    # One stats pass over a fresh graph keeps the target-vs-achieved
    # accounting honest in the saved report.
    sample = generate_rmat(
        report["workload"]["node_count"], 8.0, label_density=1e-3, seed=1
    )
    report["sample_stats"] = compute_stats(sample).as_row()

    aggregate = report["aggregate"]
    print(
        f"generation aggregate: scalar {aggregate['scalar_seconds']}s vs "
        f"vectorized {aggregate['vectorized_seconds']}s -> {aggregate['speedup']}x"
    )

    save_report(report, RESULTS_PATH, no_save=args.no_save, out=args.out)

    power_law_speedup = report["per_model"][0]["speedup"]
    if not args.quick and power_law_speedup < 10.0:
        print(
            f"FAILED: expected >= 10x power-law generation speedup, "
            f"got {power_law_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
