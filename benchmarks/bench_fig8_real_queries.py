"""Figure 8 — run time vs. query size on the real-data look-alikes.

(a) DFS queries, node count 3..10.
(b) Random queries, node count 5..15 (edge count 2N).
(c) Random queries, edge count 10..20 (node count fixed at 10).

The look-alike Patents/WordNet graphs replace the original datasets (see
DESIGN.md); the curves to compare against the paper are the growth trends,
not absolute milliseconds.
"""

from __future__ import annotations

from repro.bench.experiments import (
    BENCH_MATCHER_CONFIG,
    figure8a_dfs_query_size,
    figure8b_random_query_size,
    figure8c_random_edge_count,
)
from repro.bench.harness import build_cloud, run_suite
from repro.workloads.datasets import patents_small, wordnet_small
from repro.workloads.suites import PAPER_RESULT_LIMIT, dfs_suite

from conftest import save_rows

BATCH = 5


def test_figure8a_dfs_query_size(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: figure8a_dfs_query_size(batch_size=BATCH), rounds=1, iterations=1
    )
    save_rows(
        results_dir, "figure8a_dfs_query_size", rows,
        "Figure 8(a): run time vs. query node count (DFS queries)",
    )
    assert [row["query_nodes"] for row in rows] == [3, 4, 5, 6, 7, 8, 9, 10]


def test_figure8b_random_query_size(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: figure8b_random_query_size(batch_size=BATCH), rounds=1, iterations=1
    )
    save_rows(
        results_dir, "figure8b_random_query_size", rows,
        "Figure 8(b): run time vs. query node count (random queries, E = 2N)",
    )
    assert [row["query_nodes"] for row in rows] == [5, 7, 9, 11, 13, 15]


def test_figure8c_random_edge_count(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: figure8c_random_edge_count(batch_size=BATCH), rounds=1, iterations=1
    )
    save_rows(
        results_dir, "figure8c_random_edge_count", rows,
        "Figure 8(c): run time vs. query edge count (random queries, N = 10)",
    )
    assert [row["query_edges"] for row in rows] == [10, 12, 14, 16, 18, 20]


def test_figure8_single_query_patents(benchmark):
    """Timing of one 8-node DFS query batch on the Patents-like graph."""
    graph = patents_small()
    cloud = build_cloud(graph, machine_count=4)
    suite = dfs_suite(graph, 8, batch_size=3, seed=8)
    measurement = benchmark(
        lambda: run_suite(
            cloud, suite, matcher_config=BENCH_MATCHER_CONFIG,
            result_limit=PAPER_RESULT_LIMIT,
        )
    )
    assert measurement.total_matches > 0


def test_figure8_single_query_wordnet(benchmark):
    """Timing of one 6-node DFS query batch on the WordNet-like graph."""
    graph = wordnet_small()
    cloud = build_cloud(graph, machine_count=4)
    suite = dfs_suite(graph, 6, batch_size=3, seed=8)
    measurement = benchmark(
        lambda: run_suite(
            cloud, suite, matcher_config=BENCH_MATCHER_CONFIG,
            result_limit=PAPER_RESULT_LIMIT,
        )
    )
    assert measurement.total_matches > 0
