"""Table 2 — graph loading time vs. node count.

The paper loads R-MAT graphs of 1M..4096M nodes into Trinity; the sweep here
keeps the 4x node-count progression at a pure-Python scale and reports the
loading time of each size.
"""

from __future__ import annotations

from repro.bench.experiments import table2_loading_times
from repro.bench.harness import build_cloud
from repro.graph.generators.rmat import generate_rmat
from repro.workloads.datasets import DEFAULT_SEED

from conftest import save_rows

NODE_COUNTS = (1_000, 4_000, 16_000, 64_000)


def test_table2_loading_times(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: table2_loading_times(node_counts=NODE_COUNTS), rounds=1, iterations=1
    )
    save_rows(results_dir, "table2_loading", rows, "Table 2: graph loading time")
    assert [row["nodes"] for row in rows] == list(NODE_COUNTS)
    # Loading time grows with graph size but stays far from quadratic.
    assert rows[-1]["load_time_s"] >= rows[0]["load_time_s"]


def test_table2_single_load(benchmark):
    """Loading one mid-size R-MAT graph into a 4-machine cloud."""
    graph = generate_rmat(16_000, 16.0, label_density=0.01, seed=DEFAULT_SEED)
    cloud = benchmark(lambda: build_cloud(graph, machine_count=4))
    assert cloud.node_count == 16_000
