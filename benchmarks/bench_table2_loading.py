"""Table 2 — graph loading time vs. node count.

The paper loads R-MAT graphs of 1M..4096M nodes into Trinity.  With the
vectorized generators and the bulk CSR ingest the sweep now keeps the 4x
node-count progression *and* reaches the paper's 1M starting point; each
row reports generation and loading time separately.
"""

from __future__ import annotations

from repro.bench.experiments import table2_loading_times
from repro.bench.harness import build_cloud
from repro.graph.generators.rmat import generate_rmat
from repro.workloads.datasets import DEFAULT_SEED

from conftest import save_rows

NODE_COUNTS = (16_000, 64_000, 256_000, 1_024_000)


def test_table2_loading_times(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: table2_loading_times(node_counts=NODE_COUNTS), rounds=1, iterations=1
    )
    save_rows(results_dir, "table2_loading", rows, "Table 2: graph loading time")
    assert [row["nodes"] for row in rows] == list(NODE_COUNTS)
    # Loading time grows with graph size but stays far from quadratic: the
    # 64x node sweep must cost well under 64x^2 the smallest load, and the
    # 1M-node load itself must stay in array-native territory (seconds).
    assert rows[-1]["load_time_s"] >= rows[0]["load_time_s"]
    assert rows[-1]["load_time_s"] < 60.0


def test_table2_single_load(benchmark):
    """Loading one mid-size R-MAT graph into a 4-machine cloud."""
    graph = generate_rmat(262_144, 16.0, label_density=0.01, seed=DEFAULT_SEED)
    cloud = benchmark.pedantic(
        lambda: build_cloud(graph, machine_count=4), rounds=3, iterations=1
    )
    assert cloud.node_count == 262_144
