"""Limit-k sweep through the streaming budgeted join, on every backend.

The streaming join pipeline threads one row budget through *every* join
stage of every head block, so a ``limit=k`` query should cost O(k) — flat
in the total match count — and materialize O(k + chunk) intermediate rows
instead of joining millions of rows and truncating after.  This benchmark
pins both properties on the join-heavy workload (few labels, ~5M matches
on the full run):

* **Prefix parity** — for every limit and every backend (serial executor,
  thread pool, process pool with its shared-memory cooperative budget) the
  limited result must equal, row for row, the first ``k`` rows of the
  serial unlimited join.  Any mismatch hard-fails the run.
* **Bounded materialization** — ``join_peak_intermediate_rows`` after a
  limited query must stay within a small multiple of ``limit + chunk``,
  never tracking the total match count.  Hard-fails too.
* **Flat-in-limit cost** — the sweep 16 -> 4096 records wall time per
  limit; the largest limit may not cost more than a small multiple of the
  smallest (with an absolute floor so timer noise on near-instant joins
  cannot flake CI).

Run ``python benchmarks/bench_limit.py`` for the paper-scale sweep (writes
``benchmarks/results/limit_streaming.json``), or ``--quick`` for the
CI-sized run guarded by ``perf_guard.py`` (headline metric: serial
unlimited seconds / serial limit-1024 seconds).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from report_io import add_report_arguments, save_report

from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import ClusterConfig, RuntimeConfig
from repro.core.distributed import assemble_results
from repro.core.exploration import explore
from repro.core.join import _LIMIT_CHUNK
from repro.core.planner import MatcherConfig, QueryPlanner
from repro.graph.generators.power_law import generate_power_law
from repro.query.generators import dfs_query
from repro.runtime import create_executor

RESULTS_PATH = Path(__file__).parent / "results" / "limit_streaming.json"

BACKENDS = ("serial", "thread", "process")
LIMITS = (16, 64, 256, 1024, 4096)
#: Largest allowed t(max_limit) / t(min_limit) ratio, with an absolute
#: floor below which timer noise dominates and the ratio is meaningless.
FLATNESS_RATIO = 25.0
FLATNESS_FLOOR_SECONDS = 0.25


def peak_bound(limit: int) -> int:
    """Peak-materialization ceiling per limited query: a handful of chunks
    per stage per machine, never a function of the total match count.  The
    slack covers geometric chunk growth plus per-machine overshoot under
    the cooperative budget's stale reads."""
    return max(8 * _LIMIT_CHUNK, 16 * (limit + _LIMIT_CHUNK))


def timed(fn, repeats: int):
    """Best-of-``repeats`` wall time plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def find_heaviest_query(graph, cloud, query_sizes, seeds):
    """The candidate query with the most matches, plus its full serial join.

    Every candidate is planned, explored, and joined in full (serially)
    once; only the winner's plan, exploration, and unlimited result array
    are kept — that array is the row-for-row reference every backend's
    limited runs are checked against.
    """
    planner = QueryPlanner(cloud, MatcherConfig())
    best: Optional[Dict] = None
    for size in query_sizes:
        for seed in seeds:
            query = dfs_query(graph, size, seed=seed)
            plan = planner.plan(query)
            exploration = explore(cloud, plan)
            if exploration.empty:
                continue
            outcome = assemble_results(cloud, plan, exploration)
            matches = outcome.table.row_count
            if best is None or matches > best["matches"]:
                best = {
                    "query_size": size,
                    "seed": seed,
                    "matches": matches,
                    "stwigs": len(plan.stwigs),
                    "stwig_result_rows": exploration.total_rows(),
                    "plan": plan,
                    "exploration": exploration,
                    "reference": outcome.table.to_array(),
                }
    if best is None:
        raise SystemExit("no candidate query produced matches")
    return best


def sweep_backend(
    cloud, plan, exploration, reference: np.ndarray, backend: str,
    limits: Sequence[int], repeats: int,
) -> List[Dict]:
    """Run the limit sweep under one backend, verifying every invariant."""
    matches = len(reference)
    executor = create_executor(RuntimeConfig(backend=backend))
    try:
        if backend in ("thread", "process"):
            # Fault in the pool (and the process backend's shared-memory
            # graph publication) before anything is timed or counted.
            assemble_results(cloud, plan, exploration, result_limit=1,
                             executor=executor)
        entries: List[Dict] = []
        for limit in limits:
            # Counters and parity come from a dedicated run so `repeats`
            # never double-counts materialization.
            cloud.reset_metrics()
            outcome = assemble_results(
                cloud, plan, exploration, result_limit=limit, executor=executor
            )
            snapshot = cloud.metrics.snapshot()
            rows = outcome.table.to_array()
            if not np.array_equal(rows, reference[:limit]):
                raise SystemExit(
                    f"PREFIX MISMATCH: {backend} limit={limit} returned "
                    f"{len(rows)} rows that are not the unlimited prefix"
                )
            if outcome.truncated != (limit < matches):
                raise SystemExit(
                    f"TRUNCATED FLAG WRONG: {backend} limit={limit} "
                    f"reported {outcome.truncated} with {matches} matches"
                )
            peak = snapshot["join_peak_intermediate_rows"]
            if peak > peak_bound(limit):
                raise SystemExit(
                    f"PEAK UNBOUNDED: {backend} limit={limit} materialized a "
                    f"{peak}-row intermediate (bound {peak_bound(limit)}, "
                    f"total matches {matches})"
                )
            seconds, _ = timed(
                lambda: assemble_results(
                    cloud, plan, exploration, result_limit=limit,
                    executor=executor,
                ),
                repeats,
            )
            entries.append(
                {
                    "limit": limit,
                    "rows": int(len(rows)),
                    "truncated": outcome.truncated,
                    "seconds": round(seconds, 6),
                    "join_rows_materialized": int(
                        snapshot["join_rows_materialized"]
                    ),
                    "join_peak_intermediate_rows": int(peak),
                    "peak_fraction_of_matches": round(peak / max(matches, 1), 6),
                }
            )
            print(
                f"  {backend:<8} limit={limit:<5} {seconds:9.6f}s  "
                f"peak {peak:>8,} rows "
                f"({entries[-1]['peak_fraction_of_matches']:.2%} of matches)"
            )
        first, last = entries[0], entries[-1]
        if last["seconds"] > max(
            FLATNESS_RATIO * first["seconds"], FLATNESS_FLOOR_SECONDS
        ):
            raise SystemExit(
                f"NOT FLAT IN LIMIT: {backend} limit={last['limit']} took "
                f"{last['seconds']}s vs {first['seconds']}s at "
                f"limit={first['limit']} (ratio cap {FLATNESS_RATIO}x)"
            )
        return entries
    finally:
        executor.close()


def run_limit_sweep(quick: bool) -> Dict[str, object]:
    node_count = 2_000 if quick else 20_000
    average_degree = 6.0
    # Few labels relative to nodes -> the high-match workload where an
    # unbudgeted join would materialize millions of rows.
    label_density = 2e-3 if quick else 5e-4
    machine_count = 4
    query_sizes = (4,) if quick else (4, 5)
    seeds = range(4) if quick else range(8)
    # Limited joins finish in milliseconds, so even the quick run can
    # afford best-of-3 timing — the guarded speedup must not flake on
    # one noisy scheduler tick.
    repeats = 3

    graph = generate_power_law(
        node_count, average_degree, label_density=label_density, seed=13
    )
    with MemoryCloud.from_graph(
        graph, ClusterConfig(machine_count=machine_count)
    ) as cloud:
        heavy = find_heaviest_query(graph, cloud, query_sizes, seeds)
        plan, exploration = heavy["plan"], heavy["exploration"]
        reference = heavy["reference"]
        matches = heavy["matches"]
        print(
            f"[limit] heaviest query: size={heavy['query_size']} "
            f"seed={heavy['seed']} -> {matches:,} matches "
            f"({heavy['stwig_result_rows']:,} STwig rows)"
        )
        # Every sweep limit must actually truncate, otherwise the sweep
        # would silently measure full joins.
        limits = tuple(limit for limit in LIMITS if limit < matches)
        if len(limits) < len(LIMITS):
            raise SystemExit(
                f"workload too small: {matches} matches does not cover the "
                f"{LIMITS} sweep — grow the graph or lower label_density"
            )

        full_seconds, _ = timed(
            lambda: assemble_results(cloud, plan, exploration), repeats
        )
        print(f"[limit] unlimited serial join: {full_seconds:.4f}s")

        sweep: Dict[str, List[Dict]] = {}
        for backend in BACKENDS:
            sweep[backend] = sweep_backend(
                cloud, plan, exploration, reference, backend, limits, repeats
            )

    serial_by_limit = {entry["limit"]: entry for entry in sweep["serial"]}
    at_1024 = serial_by_limit[1024]
    aggregate = {
        "matches": matches,
        "full_serial_seconds": round(full_seconds, 6),
        "limited_1024_seconds": at_1024["seconds"],
        "limited_speedup": round(
            full_seconds / max(at_1024["seconds"], 1e-9), 2
        ),
        "flatness_ratio": round(
            sweep["serial"][-1]["seconds"]
            / max(sweep["serial"][0]["seconds"], 1e-9),
            2,
        ),
        "peak_intermediate_rows_at_1024": at_1024["join_peak_intermediate_rows"],
        "peak_fraction_of_matches_at_1024": at_1024["peak_fraction_of_matches"],
    }
    return {
        "benchmark": "streaming budgeted join: limit-k sweep across backends",
        "workload": {
            "node_count": node_count,
            "average_degree": average_degree,
            "label_density": label_density,
            "machine_count": machine_count,
            "query_sizes": list(query_sizes),
            "seeds": len(list(seeds)),
        },
        "query": {
            key: heavy[key]
            for key in ("query_size", "seed", "matches", "stwigs",
                        "stwig_result_rows")
        },
        "parity": (
            "row-for-row prefix of the serial unlimited join verified on "
            "every backend at every limit; truncated flag exact"
        ),
        "sweep": sweep,
        "aggregate": aggregate,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_report_arguments(parser)
    args = parser.parse_args(argv)

    report = run_limit_sweep(quick=args.quick)
    report["mode"] = "quick" if args.quick else "full"

    print(json.dumps(report["aggregate"], indent=2))
    save_report(report, RESULTS_PATH, no_save=args.no_save or args.quick, out=args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
