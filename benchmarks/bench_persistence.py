"""Persistent-snapshot benchmark: save/open latency + delta-replay parity.

The storage layer's pitch is that a saved cloud reopens in near-constant
time: ``MemoryCloud.open_snapshot`` attaches ``np.memmap`` views over the
snapshot's column file instead of regenerating the graph and re-partitioning
it.  This benchmark pins that claim and the correctness that has to ride
with it:

* **Open speedup** — wall time of generate + partition (the cold path a
  snapshot replaces) over wall time of ``open_snapshot`` (best of several).
  The headline ``aggregate.open_speedup`` is guarded by ``perf_guard.py``
  in CI quick mode, and the full run records the paper-scale (1M-node)
  number in ``benchmarks/results/persistence.json``.
* **Reopen parity** — the snapshot-opened cloud must return row-for-row
  identical matches to the in-RAM cloud it was saved from; quick mode also
  cross-checks against the VF2 baseline.  Any mismatch hard-fails.
* **Delta-replay parity** — after appending edges to the snapshot's log,
  the overlay-opened cloud and the compacted (folded, generation-bumped)
  cloud must agree row for row.  Hard-fails too.

Run ``python benchmarks/bench_persistence.py`` for the 1M-node run, or
``--quick`` for the CI-sized smoke guarded by the perf baseline.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from report_io import add_report_arguments, save_report

from repro.baselines.vf2 import vf2_match
from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import ClusterConfig
from repro.core.engine import SubgraphMatcher
from repro.graph.generators.power_law import generate_power_law
from repro.query.generators import dfs_query
from repro.storage import DeltaLog, compact_snapshot

RESULTS_PATH = Path(__file__).parent / "results" / "persistence.json"

OPEN_REPEATS = 3


def match_rows(cloud, query, limit: Optional[int]) -> List[tuple]:
    with SubgraphMatcher(cloud) as matcher:
        result = matcher.match(query, limit=limit)
    return sorted(result.rows), list(result.query_nodes)


def require(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"PARITY FAILURE: {message}")


def run(
    node_count: int,
    machine_count: int,
    query_size: int,
    limit: Optional[int],
    vf2_check: bool,
) -> Dict[str, object]:
    started = time.perf_counter()
    graph = generate_power_law(node_count, 8.0, label_density=1e-3, seed=7)
    generate_seconds = time.perf_counter() - started

    started = time.perf_counter()
    cloud = MemoryCloud.from_graph(graph, ClusterConfig(machine_count=machine_count))
    load_seconds = time.perf_counter() - started
    cold_seconds = generate_seconds + load_seconds

    query = dfs_query(graph, query_size, seed=3)
    reference_rows, query_nodes = match_rows(cloud, query, limit)

    workdir = Path(tempfile.mkdtemp(prefix="bench_persistence_"))
    snapshot = workdir / "snap"
    try:
        started = time.perf_counter()
        cloud.save_snapshot(snapshot)
        save_seconds = time.perf_counter() - started

        open_seconds = float("inf")
        reopened = None
        for _ in range(OPEN_REPEATS):
            if reopened is not None:
                reopened.close()
            started = time.perf_counter()
            reopened = MemoryCloud.open_snapshot(snapshot)
            open_seconds = min(open_seconds, time.perf_counter() - started)
        require(
            reopened.storage_publication is not None,
            "snapshot did not reopen on the memmap fast path",
        )

        snapshot_rows, _ = match_rows(reopened, query, limit)
        require(
            snapshot_rows == reference_rows,
            f"snapshot-opened cloud returned {len(snapshot_rows)} rows, "
            f"in-RAM cloud returned {len(reference_rows)}",
        )
        if vf2_check:
            expected = sorted(
                tuple(match[node] for node in query_nodes)
                for match in vf2_match(graph, query)
            )
            if limit is not None:
                require(
                    set(snapshot_rows) <= set(expected),
                    "limited snapshot rows are not a subset of the VF2 matches",
                )
            else:
                require(
                    snapshot_rows == expected,
                    "snapshot rows diverge from the VF2 baseline",
                )

        # Delta replay: append a handful of edges between existing nodes,
        # then check the overlay and the compacted base agree row for row.
        new_edges = [(i, i + node_count // 2) for i in range(8)]
        DeltaLog(snapshot).append_edges(new_edges)
        started = time.perf_counter()
        overlay = MemoryCloud.open_snapshot(snapshot)
        replay_open_seconds = time.perf_counter() - started
        require(
            overlay.storage_publication is None,
            "a snapshot with pending deltas must take the replayed path",
        )
        overlay_rows, _ = match_rows(overlay, query, limit)

        started = time.perf_counter()
        manifest = compact_snapshot(snapshot)
        compact_seconds = time.perf_counter() - started
        require(manifest.generation == 2, "compaction did not bump the generation")
        compacted = MemoryCloud.open_snapshot(snapshot)
        require(
            compacted.storage_publication is not None,
            "the compacted base must reopen on the memmap fast path",
        )
        compacted_rows, _ = match_rows(compacted, query, limit)
        require(
            compacted_rows == overlay_rows,
            f"compacted cloud returned {len(compacted_rows)} rows, "
            f"delta overlay returned {len(overlay_rows)}",
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "nodes": graph.node_count,
        "edges": graph.edge_count,
        "machines": machine_count,
        "query_size": query_size,
        "limit": limit,
        "matches": len(reference_rows),
        "generate_seconds": round(generate_seconds, 4),
        "load_seconds": round(load_seconds, 4),
        "cold_seconds": round(cold_seconds, 4),
        "save_seconds": round(save_seconds, 4),
        "open_seconds": round(open_seconds, 4),
        "replay_open_seconds": round(replay_open_seconds, 4),
        "compact_seconds": round(compact_seconds, 4),
        "open_speedup": round(cold_seconds / max(open_seconds, 1e-9), 1),
        "vf2_checked": vf2_check,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_report_arguments(parser)
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--machines", type=int, default=4)
    args = parser.parse_args(argv)

    node_count = args.nodes or (50_000 if args.quick else 1_000_000)
    row = run(
        node_count,
        args.machines,
        query_size=4,
        limit=4096,
        vf2_check=args.quick or node_count <= 100_000,
    )
    print(
        f"{row['nodes']} nodes: cold (generate+partition) {row['cold_seconds']}s, "
        f"save {row['save_seconds']}s, open {row['open_seconds']}s "
        f"-> {row['open_speedup']}x; replay-open {row['replay_open_seconds']}s, "
        f"compact {row['compact_seconds']}s; parity ok ({row['matches']} matches)"
    )
    report = {
        "benchmark": "persistence",
        "quick": bool(args.quick),
        "rows": [row],
        "aggregate": {"open_speedup": row["open_speedup"]},
    }
    save_report(report, RESULTS_PATH, no_save=args.no_save, out=args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
