"""CI perf-regression guard over the quick-mode benchmark reports.

The bench-smoke CI job runs every comparison benchmark in ``--quick`` mode
and writes each report JSON into an artifact directory.  This guard checks
the headline speedup of every report against the checked-in expectations in
``benchmarks/results/quick_baselines.json``: a quick-mode speedup more than
``tolerance`` (default 30%) below its baseline fails the job, so a scalar
regression in any rewritten subsystem (CSR substrate, columnar join,
array-native exploration, vectorized generators) is caught on the PR that
introduces it rather than in the next full benchmark run.

Speedups — not absolute seconds — are compared, so the guard is stable
across CI hardware generations.

The matching between baselines and reports is *total*, and loudly so, in
both directions: a baseline entry whose quick report is missing (a renamed
or dropped benchmark would otherwise lose its regression guard without
anyone noticing), a report whose recorded metric path no longer exists,
and a ``*.quick.json`` report with no baseline entry (a new benchmark
running unguarded) are all failures — never silent skips.

Usage:
    python benchmarks/perf_guard.py --quick-dir bench-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

BASELINES_PATH = Path(__file__).parent / "results" / "quick_baselines.json"


def extract(report: dict, path: Sequence[str]) -> float:
    value = report
    for key in path:
        if not isinstance(value, dict) or key not in value:
            raise KeyError(
                f"metric path {list(path)} missing from report (failed at {key!r})"
            )
        value = value[key]
    return float(value)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick-dir", type=Path, required=True,
        help="directory holding the <name>.quick.json reports",
    )
    parser.add_argument(
        "--baselines", type=Path, default=BASELINES_PATH,
        help="checked-in quick-mode speedup expectations",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed fractional regression (default: the baselines file's)",
    )
    args = parser.parse_args(argv)

    config = json.loads(args.baselines.read_text(encoding="utf-8"))
    tolerance = args.tolerance if args.tolerance is not None else config["tolerance"]
    failures = []
    for name, baseline in config["baselines"].items():
        report_path = args.quick_dir / f"{name}.quick.json"
        if not report_path.exists():
            failures.append(
                f"{name}: missing quick report {report_path} — a renamed or "
                f"dropped benchmark must rename/drop its baseline entry too"
            )
            continue
        report = json.loads(report_path.read_text(encoding="utf-8"))
        try:
            measured = extract(report, baseline["metric"])
        except (KeyError, TypeError, ValueError) as error:
            failures.append(f"{name}: cannot read guarded metric: {error}")
            continue
        min_cpus = baseline.get("min_cpus")
        if min_cpus and (report.get("cpu_count") or 0) < min_cpus:
            # Core-count-gated floors (parallel speedups) are meaningless on
            # small hosts; the report must still exist and its metric must
            # still be readable — only the floor comparison is skipped.
            print(
                f"{name}: quick speedup {measured}x — floor skipped "
                f"(host has {report.get('cpu_count')} CPUs, needs {min_cpus})"
            )
            continue
        floor = baseline["speedup"] * (1.0 - tolerance)
        status = "ok" if measured >= floor else "REGRESSED"
        print(
            f"{name}: quick speedup {measured}x "
            f"(baseline {baseline['speedup']}x, floor {floor:.2f}x) {status}"
        )
        if measured < floor:
            failures.append(
                f"{name}: quick speedup {measured}x fell below the "
                f"{floor:.2f}x floor (baseline {baseline['speedup']}x "
                f"- {tolerance:.0%} tolerance)"
            )
    for report_path in sorted(args.quick_dir.glob("*.quick.json")):
        name = report_path.name[: -len(".quick.json")]
        if name not in config["baselines"]:
            failures.append(
                f"{name}: quick report {report_path} has no baseline entry — "
                f"add one to {args.baselines} so the benchmark is guarded"
            )
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("perf guard passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
