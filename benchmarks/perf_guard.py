"""CI perf-regression guard over the quick-mode benchmark reports.

The bench-smoke CI job runs every comparison benchmark in ``--quick`` mode
and writes each report JSON into an artifact directory.  This guard checks
the headline speedup of every report against the checked-in expectations in
``benchmarks/results/quick_baselines.json``: a quick-mode speedup more than
``tolerance`` (default 30%) below its baseline fails the job, so a scalar
regression in any rewritten subsystem (CSR substrate, columnar join,
array-native exploration, vectorized generators) is caught on the PR that
introduces it rather than in the next full benchmark run.

Speedups — not absolute seconds — are compared, so the guard is stable
across CI hardware generations.

Usage:
    python benchmarks/perf_guard.py --quick-dir bench-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

BASELINES_PATH = Path(__file__).parent / "results" / "quick_baselines.json"


def extract(report: dict, path: Sequence[str]) -> float:
    value = report
    for key in path:
        value = value[key]
    return float(value)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick-dir", type=Path, required=True,
        help="directory holding the <name>.quick.json reports",
    )
    parser.add_argument(
        "--baselines", type=Path, default=BASELINES_PATH,
        help="checked-in quick-mode speedup expectations",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed fractional regression (default: the baselines file's)",
    )
    args = parser.parse_args(argv)

    config = json.loads(args.baselines.read_text(encoding="utf-8"))
    tolerance = args.tolerance if args.tolerance is not None else config["tolerance"]
    failures = []
    for name, baseline in config["baselines"].items():
        report_path = args.quick_dir / f"{name}.quick.json"
        if not report_path.exists():
            failures.append(f"{name}: missing quick report {report_path}")
            continue
        report = json.loads(report_path.read_text(encoding="utf-8"))
        measured = extract(report, baseline["metric"])
        floor = baseline["speedup"] * (1.0 - tolerance)
        status = "ok" if measured >= floor else "REGRESSED"
        print(
            f"{name}: quick speedup {measured}x "
            f"(baseline {baseline['speedup']}x, floor {floor:.2f}x) {status}"
        )
        if measured < floor:
            failures.append(
                f"{name}: quick speedup {measured}x fell below the "
                f"{floor:.2f}x floor (baseline {baseline['speedup']}x "
                f"- {tolerance:.0%} tolerance)"
            )
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("perf guard passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
