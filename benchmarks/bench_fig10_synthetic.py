"""Figure 10 — synthetic R-MAT sweeps.

(a) run time vs. node count at fixed average degree (16K -> 1M nodes,
    the paper's Table 2 starting scale, unlocked by the vectorized
    generators),
(b) run time vs. node count at fixed graph density,
(c) run time vs. average degree,
(d) run time vs. label density.
"""

from __future__ import annotations

from repro.bench.experiments import (
    BENCH_MATCHER_CONFIG,
    figure10a_graph_size_fixed_degree,
    figure10b_graph_size_fixed_density,
    figure10c_average_degree,
    figure10d_label_density,
)
from repro.bench.harness import build_cloud, run_suite
from repro.workloads.datasets import rmat_graph
from repro.workloads.suites import PAPER_RESULT_LIMIT, dfs_suite

from conftest import save_rows

BATCH = 3


def test_figure10a_node_count_fixed_degree(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: figure10a_graph_size_fixed_degree(batch_size=BATCH), rounds=1, iterations=1
    )
    save_rows(
        results_dir, "figure10a_nodes_fixed_degree", rows,
        "Figure 10(a): run time vs. node count (average degree fixed at 16)",
    )
    # The paper's observation: at fixed degree, query time is not proportional
    # to graph size. A 64x larger graph must stay well below 64x the time.
    assert rows[-1]["dfs_ms"] < rows[0]["dfs_ms"] * 64


def test_figure10b_node_count_fixed_density(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: figure10b_graph_size_fixed_density(batch_size=BATCH), rounds=1, iterations=1
    )
    save_rows(
        results_dir, "figure10b_nodes_fixed_density", rows,
        "Figure 10(b): run time vs. node count (graph density fixed)",
    )
    # With fixed density the average degree grows with size, so the last
    # configuration is denser than the first.
    assert rows[-1]["avg_degree"] > rows[0]["avg_degree"]


def test_figure10c_average_degree(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: figure10c_average_degree(batch_size=BATCH), rounds=1, iterations=1
    )
    save_rows(
        results_dir, "figure10c_average_degree", rows,
        "Figure 10(c): run time vs. average degree",
    )
    assert [row["degree"] for row in rows] == [4, 8, 16, 32, 64]


def test_figure10d_label_density(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: figure10d_label_density(batch_size=BATCH), rounds=1, iterations=1
    )
    save_rows(
        results_dir, "figure10d_label_density", rows,
        "Figure 10(d): run time vs. label density",
    )
    # Denser labels (more distinct labels) mean more selective STwigs: the
    # densest configuration must not be slower than the sparsest one.
    assert rows[-1]["dfs_ms"] <= rows[0]["dfs_ms"] * 1.5


def test_figure10_reference_query_batch(benchmark):
    """Wall-clock of the million-node synthetic workload (degree 8)."""
    graph = rmat_graph(node_count=1_048_576, average_degree=8.0)
    cloud = build_cloud(graph, machine_count=4)
    suite = dfs_suite(graph, 6, batch_size=3, seed=10)
    measurement = benchmark(
        lambda: run_suite(
            cloud, suite, matcher_config=BENCH_MATCHER_CONFIG,
            result_limit=PAPER_RESULT_LIMIT,
        )
    )
    assert measurement.query_count == 3
