"""Serial vs. thread vs. process cluster runtime, end to end.

The paper's cluster matches STwigs on every machine *concurrently*; the
reproduction's process executor models that on one host — worker processes
over shared-memory CSR partitions (published once, mapped zero-copy), with
the proxy-side merge unchanged.  This benchmark sweeps graph sizes and, for
each backend, times the same end-to-end query workload:

* **Parity** — every backend's result rows and communication counters are
  verified identical to the serial oracle before any timing is reported
  (a faster-but-different engine would be worthless as a simulation).
* **Speedup** — end-to-end query wall-clock (exploration + gather + join)
  serial / backend.  Process-backend speedups scale with physical cores;
  the report records ``cpu_count`` so numbers from different hosts are
  comparable.  On a single-core host the process backend measures pure
  orchestration overhead (speedup < 1 is expected there).

Run ``python benchmarks/bench_runtime.py`` for the full 100k -> 1M sweep
(writes ``benchmarks/results/runtime.json``), or ``--quick`` for the
CI-sized run guarded by ``perf_guard.py``.  ``--multicore`` runs the
join-heavy workload only — the class where the end-to-end shared-memory
pipeline (worker-published tables, zero driver copies, work stealing)
shows multi-core wins — and writes ``runtime_multicore.json``; its quick
report is floor-guarded by ``perf_guard.py`` on hosts with enough cores
(the ``min_cpus`` key in ``quick_baselines.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from report_io import add_report_arguments, save_report

from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import ClusterConfig, RuntimeConfig
from repro.core.engine import SubgraphMatcher
from repro.core.planner import MatcherConfig
from repro.graph.generators.power_law import generate_power_law
from repro.query.generators import dfs_query
from repro.runtime import create_executor

RESULTS_PATH = Path(__file__).parent / "results" / "runtime.json"
MULTICORE_RESULTS_PATH = Path(__file__).parent / "results" / "runtime_multicore.json"

#: (node_count, average_degree, query_count, label_density, row_cap,
#: heavy_count, heavy_cap) per sweep point.  Low label densities (few
#: distinct labels) make the per-machine exploration and join work heavy —
#: the work the executors parallelize — while the row caps keep the answer
#: sets bounded so the benchmark measures cluster execution, not result
#: materialization.  The heavy class (answers in [row_cap, heavy_cap]) is
#: where multi-core hosts see the process backend pull ahead.
FULL_SWEEP = (
    (100_000, 8, 6, 5e-4, 100_000, 2, 2_000_000),
    (300_000, 8, 4, 2e-4, 100_000, 2, 2_000_000),
    (1_000_000, 6, 3, 1e-4, 100_000, 1, 2_000_000),
)
QUICK_SWEEP = ((40_000, 8, 6, 1e-3, 20_000, 0, 0),)

#: (node_count, degree, label_density, query_count, row_floor, row_cap) for
#: the --multicore mode: join-heavy queries only (answer sets in
#: [row_floor, row_cap]), where the per-machine multiway join dominates and
#: the process backend's parallel speedup is the headline number.
MULTICORE_FULL = ((300_000, 8, 2e-4, 3, 100_000, 2_000_000),)
MULTICORE_QUICK = ((40_000, 8, 1e-3, 2, 5_000, 1_000_000),)

BACKENDS = ("serial", "thread", "process")
MACHINE_COUNT = 4
QUERY_NODES = 6


def select_workload(
    graph, cloud, query_count: int, row_cap: int, row_floor: int = 1
) -> List:
    """Seeded DFS queries whose answer sets land in ``[row_floor, row_cap]``.

    DFS-sampled patterns over few-label graphs vary wildly — the same
    generator yields queries with ten answers or ten million.  Candidate
    seeds are probed (serially, with a probe limit) and only queries whose
    full answer set fits the band are kept, so every backend runs an
    identical, materialization-bounded workload.  A high ``row_floor``
    selects the *join-heavy* class: large intermediate tables whose
    per-machine multiway join is the dominant — and parallelizable — cost.
    Selection is deterministic: seeds are tried in order.
    """
    probe = SubgraphMatcher(cloud, executor="serial")
    selected: List = []
    seed = 1000
    while len(selected) < query_count and seed < 1300:
        query = dfs_query(graph, QUERY_NODES, seed=seed)
        seed += 1
        result = probe.match(query, limit=row_cap)
        if result.stats.truncated or result.match_count < row_floor:
            continue
        selected.append(query)
    if len(selected) < query_count:
        raise SystemExit(
            f"could not select {query_count} bounded queries (got {len(selected)})"
        )
    cloud.reset_metrics()
    return selected


def run_backend(
    cloud: MemoryCloud,
    queries: Sequence,
    backend: str,
    workers: Optional[int],
    stealing: bool = True,
) -> Dict:
    """Time the workload under one backend; returns rows+metrics for parity."""
    executor = create_executor(
        RuntimeConfig(backend=backend, workers=workers, stealing=stealing)
    )
    matcher = SubgraphMatcher(cloud, MatcherConfig(), executor=executor)
    try:
        if backend in ("thread", "process"):
            # Fault in the pool (and, for processes, the shared-memory
            # publication) before timing: the paper's cluster is
            # provisioned before queries arrive.
            matcher.match(queries[0], limit=1)
        started = time.perf_counter()
        outputs = [matcher.match(query) for query in queries]
        elapsed = time.perf_counter() - started
    finally:
        # The matcher treats a caller-built executor as shared, so close it
        # here (terminating the pool and unlinking the shm publication).
        executor.close()
    run: Dict = {
        "seconds": elapsed,
        "rows": [result.rows for result in outputs],
        "metrics": [result.metrics for result in outputs],
        "match_counts": [result.match_count for result in outputs],
    }
    counters = getattr(executor, "transport_counters", None)
    if counters is not None:
        run["transport"] = dict(counters)
    return run


def sweep_point(
    node_count: int,
    degree: int,
    query_count: int,
    label_density: float,
    row_cap: int,
    heavy_count: int,
    heavy_cap: int,
    workers: Optional[int],
    stealing: bool = True,
) -> Dict:
    graph = generate_power_law(
        node_count, degree, label_density=label_density, seed=29
    )
    point: Dict = {
        "nodes": node_count,
        "edges": graph.edge_count,
        "degree": degree,
        "label_density": label_density,
        "labels": len(graph.distinct_labels()),
        "machines": MACHINE_COUNT,
        "row_cap": row_cap,
        "workloads": {},
    }
    with MemoryCloud.from_graph(
        graph, ClusterConfig(machine_count=MACHINE_COUNT)
    ) as cloud:
        workloads = {
            "selective": select_workload(graph, cloud, query_count, row_cap),
        }
        if heavy_count:
            # Join-heavy class: answers in [row_cap, heavy_cap] force large
            # intermediate tables, so the per-machine join dominates — the
            # phase the process backend parallelizes across cores.
            workloads["heavy"] = select_workload(
                graph, cloud, heavy_count, heavy_cap, row_floor=row_cap
            )
        for workload_name, queries in workloads.items():
            reference = None
            results: Dict = {}
            for backend in BACKENDS:
                cloud.reset_metrics()
                run = run_backend(cloud, queries, backend, workers, stealing=stealing)
                if reference is None:
                    reference = run
                else:
                    if run["rows"] != reference["rows"]:
                        raise SystemExit(
                            f"PARITY FAILURE: {backend} rows != serial rows"
                        )
                    if run["metrics"] != reference["metrics"]:
                        raise SystemExit(
                            f"PARITY FAILURE: {backend} metrics != serial metrics"
                        )
                results[backend] = {
                    "seconds": round(run["seconds"], 4),
                    "speedup_vs_serial": round(
                        reference["seconds"] / run["seconds"], 3
                    ),
                }
                print(
                    f"  {node_count:>9,} nodes | {workload_name:<9} | {backend:<8}"
                    f" {run['seconds']:8.3f}s"
                    f"  ({results[backend]['speedup_vs_serial']}x vs serial,"
                    f" {sum(run['match_counts'])} matches)"
                )
            point["workloads"][workload_name] = {
                "query_count": len(queries),
                "match_counts": reference["match_counts"],
                "backends": results,
            }
    return point


def multicore_point(
    node_count: int,
    degree: int,
    label_density: float,
    query_count: int,
    row_floor: int,
    row_cap: int,
    workers: Optional[int],
    stealing: bool,
) -> Dict:
    """Join-heavy workload across all backends, with transport counters.

    Parity against the serial oracle is verified exactly as in the main
    sweep; additionally, when stealing is off, the process backend must
    report zero driver-side table receives — the end-to-end shared-memory
    claim, asserted on the real counter, not inferred from timings.
    """
    graph = generate_power_law(
        node_count, degree, label_density=label_density, seed=29
    )
    point: Dict = {
        "nodes": node_count,
        "edges": graph.edge_count,
        "degree": degree,
        "label_density": label_density,
        "labels": len(graph.distinct_labels()),
        "machines": MACHINE_COUNT,
        "row_floor": row_floor,
        "row_cap": row_cap,
        "backends": {},
    }
    with MemoryCloud.from_graph(
        graph, ClusterConfig(machine_count=MACHINE_COUNT)
    ) as cloud:
        queries = select_workload(
            graph, cloud, query_count, row_cap, row_floor=row_floor
        )
        reference = None
        for backend in BACKENDS:
            cloud.reset_metrics()
            run = run_backend(cloud, queries, backend, workers, stealing=stealing)
            if reference is None:
                reference = run
            else:
                if run["rows"] != reference["rows"]:
                    raise SystemExit(f"PARITY FAILURE: {backend} rows != serial rows")
                if run["metrics"] != reference["metrics"]:
                    raise SystemExit(
                        f"PARITY FAILURE: {backend} metrics != serial metrics"
                    )
            entry: Dict = {
                "seconds": round(run["seconds"], 4),
                "speedup_vs_serial": round(reference["seconds"] / run["seconds"], 3),
            }
            if "transport" in run:
                entry["transport"] = run["transport"]
                if not stealing and run["transport"]["driver_table_receives"]:
                    raise SystemExit(
                        "ZERO-COPY FAILURE: driver received table bytes with "
                        f"stealing off: {run['transport']}"
                    )
            point["backends"][backend] = entry
            print(
                f"  {node_count:>9,} nodes | heavy     | {backend:<8}"
                f" {run['seconds']:8.3f}s"
                f"  ({entry['speedup_vs_serial']}x vs serial,"
                f" {sum(run['match_counts'])} matches)"
            )
        point["query_count"] = len(queries)
        point["match_counts"] = reference["match_counts"]
    return point


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_report_arguments(parser)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="pool size for thread/process backends (default: min(machines, CPUs))",
    )
    parser.add_argument(
        "--multicore", action="store_true",
        help="join-heavy multi-core sweep only (writes runtime_multicore.json)",
    )
    parser.add_argument(
        "--no-stealing", action="store_true",
        help="disable work stealing (also asserts the zero-copy counter)",
    )
    args = parser.parse_args(argv)
    stealing = not args.no_stealing

    if args.multicore:
        sweep = MULTICORE_QUICK if args.quick else MULTICORE_FULL
        points = []
        for point_args in sweep:
            print(
                f"[runtime] multicore sweep {point_args[0]:,} nodes "
                f"(degree {point_args[1]}, stealing={'on' if stealing else 'off'})"
            )
            points.append(multicore_point(*point_args, args.workers, stealing))
        largest = points[-1]
        report = {
            "benchmark": (
                "cluster runtime, join-heavy multi-core sweep: "
                "serial vs thread vs process executors"
            ),
            "mode": "quick" if args.quick else "full",
            "cpu_count": os.cpu_count(),
            "machine_count": MACHINE_COUNT,
            "stealing": stealing,
            "parity": (
                "rows and communication metrics verified identical across "
                "backends"
            ),
            "note": (
                "process-backend speedups scale with physical cores; on a "
                "single-core host they measure pure orchestration overhead "
                "(the perf guard's min_cpus key skips the floor there)"
            ),
            "sweep": points,
            "aggregate": {
                "nodes": largest["nodes"],
                "process_speedup": largest["backends"]["process"][
                    "speedup_vs_serial"
                ],
                "thread_speedup": largest["backends"]["thread"]["speedup_vs_serial"],
            },
        }
        print(json.dumps(report["aggregate"], indent=2))
        save_report(
            report,
            MULTICORE_RESULTS_PATH,
            no_save=args.no_save or args.quick,
            out=args.out,
        )
        return 0

    sweep = QUICK_SWEEP if args.quick else FULL_SWEEP
    points = []
    for point_args in sweep:
        print(f"[runtime] sweeping {point_args[0]:,} nodes (degree {point_args[1]})")
        points.append(sweep_point(*point_args, args.workers, stealing))

    largest = points[-1]
    headline = largest["workloads"].get("heavy") or largest["workloads"]["selective"]
    report = {
        "benchmark": "cluster runtime: serial vs thread vs process executors",
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "machine_count": MACHINE_COUNT,
        "stealing": stealing,
        "parity": "rows and communication metrics verified identical across backends",
        "note": (
            "process-backend speedups scale with physical cores; on a "
            "single-core host they measure pure orchestration overhead"
        ),
        "sweep": points,
        "aggregate": {
            "nodes": largest["nodes"],
            "process_speedup": headline["backends"]["process"]["speedup_vs_serial"],
            "thread_speedup": headline["backends"]["thread"]["speedup_vs_serial"],
        },
    }
    print(json.dumps(report["aggregate"], indent=2))
    save_report(report, RESULTS_PATH, no_save=args.no_save or args.quick, out=args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
