"""Future-work experiments announced in the paper's conclusions (Section 8).

* query throughput vs. machine count,
* transmitted data volume vs. machine count,
* response-time bounds (median and tail percentiles) for a mixed workload.
"""

from __future__ import annotations

from repro.bench.future_work import (
    response_time_bounds,
    throughput_vs_machines,
    transmitted_data_vs_machines,
)

from conftest import save_rows


def test_throughput_vs_machines(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: throughput_vs_machines(machine_counts=(1, 2, 4, 8)),
        rounds=1, iterations=1,
    )
    save_rows(
        results_dir, "future_throughput", rows,
        "Future work: query throughput vs. machine count",
    )
    assert [row["machines"] for row in rows] == [1, 2, 4, 8]
    # Throughput must not degrade as machines are added.
    assert rows[-1]["throughput_qps"] >= rows[0]["throughput_qps"] * 0.8


def test_transmitted_data_vs_machines(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: transmitted_data_vs_machines(machine_counts=(2, 4, 8, 12)),
        rounds=1, iterations=1,
    )
    save_rows(
        results_dir, "future_transmitted_data", rows,
        "Future work: transmitted data vs. machine count",
    )
    assert [row["machines"] for row in rows] == [2, 4, 8, 12]
    # More machines -> more cross-machine traffic per query.
    assert rows[-1]["avg_mb_per_query"] >= rows[0]["avg_mb_per_query"]


def test_response_time_bounds(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: response_time_bounds(query_count=20), rounds=1, iterations=1
    )
    save_rows(
        results_dir, "future_response_time_bounds", rows,
        "Future work: response-time bounds for a mixed query stream",
    )
    assert rows[0]["percentile"] == "p50"
    latencies = [row["latency_ms"] for row in rows]
    assert latencies == sorted(latencies)
