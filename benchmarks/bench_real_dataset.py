"""Real-dataset benchmark: sparse-ID ingestion must cost (almost) nothing.

The ingestion layer's pitch is that a real edge list with sparse 64-bit
hash IDs — the checked-in ``data/coauthor_5k.edges`` co-authorship slice —
hits the same dense fast paths as a synthetic graph, because the ``IdMap``
remaps every external ID to the contiguous dense domain at ingest and
translates back only at result materialization.  This benchmark pins that
claim and the correctness riding with it:

* **Parity** — wall time of the motif suite on the ID-compacted
  equivalent (the same topology ingested with pre-compacted 0..n-1 IDs)
  over wall time on the sparse-ID ingest.  ``aggregate.parity`` is guarded
  by ``perf_guard.py`` in CI quick mode, and the benchmark itself
  hard-fails if the sparse-ID run is more than ``MAX_OVERHEAD`` (1.2x)
  slower than the compacted run.
* **Row parity** — both ingests share the dense domain (dense ID = rank of
  external ID), so every motif must return row-for-row identical dense
  tables, and the sparse run's external rows must be exactly the dense
  rows mapped through the IdMap.  Any mismatch hard-fails.
* **Snapshot round trip** — the sparse cloud saves, reopens on the memmap
  path with its IdMap intact, and answers a motif with the same external
  rows as the in-RAM cloud.  Hard-fails too.

Run ``python benchmarks/bench_real_dataset.py`` for the full suite, or
``--quick`` for the CI-sized smoke guarded by the perf baseline.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from report_io import add_report_arguments, save_report

import numpy as np

from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import ClusterConfig
from repro.core.engine import SubgraphMatcher
from repro.ingest import degree_band_labeler, ingest_edges, read_edge_list
from repro.workloads.motifs import MOTIFS

RESULTS_PATH = Path(__file__).parent / "results" / "real_dataset.json"
DATA_PATH = Path(__file__).parent / "data" / "coauthor_5k.edges"

#: Hard ceiling on sparse-ID cost relative to the ID-compacted equivalent.
MAX_OVERHEAD = 1.2
REPEATS = 3


def require(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"PARITY FAILURE: {message}")


def best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run(machine_count: int, limit: Optional[int]) -> Dict[str, object]:
    src_ext, dst_ext, _ = read_edge_list(DATA_PATH)
    labeler = degree_band_labeler()

    started = time.perf_counter()
    sparse_graph = ingest_edges(src_ext, dst_ext, labeler=labeler, source=str(DATA_PATH))
    sparse_ingest_seconds = time.perf_counter() - started
    require(
        sparse_graph.ingest_report.remapped,
        "the co-authorship slice must exercise the remap path",
    )

    # The ID-compacted equivalent a careful user would prepare offline:
    # identical topology, endpoints already renumbered 0..n-1.  IdMap
    # assigns dense IDs by external rank, so both ingests share the dense
    # domain and must agree row for row.
    id_map = sparse_graph.id_map
    compact_src = id_map.to_dense(src_ext)
    compact_dst = id_map.to_dense(dst_ext)
    started = time.perf_counter()
    dense_graph = ingest_edges(compact_src, compact_dst, labeler=labeler)
    dense_ingest_seconds = time.perf_counter() - started
    require(
        dense_graph.id_map.is_identity,
        "the compacted ingest must take the identity fast path",
    )

    config = ClusterConfig(machine_count=machine_count)
    sparse_cloud = MemoryCloud.from_graph(sparse_graph, config)
    dense_cloud = MemoryCloud.from_graph(dense_graph, config)

    rows = []
    sparse_total = 0.0
    dense_total = 0.0
    try:
        with SubgraphMatcher(sparse_cloud) as sparse_matcher, SubgraphMatcher(
            dense_cloud
        ) as dense_matcher:
            for name, factory in MOTIFS.items():
                query = factory()
                sparse_seconds = best_of(
                    lambda: sparse_matcher.match(query, limit=limit)
                )
                dense_seconds = best_of(
                    lambda: dense_matcher.match(query, limit=limit)
                )
                sparse_result = sparse_matcher.match(query, limit=limit)
                dense_result = dense_matcher.match(query, limit=limit)

                require(
                    sorted(sparse_result.rows)
                    == sorted(dense_result.rows),
                    f"{name}: sparse and compacted ingests disagree on dense rows",
                )
                dense_rows = sparse_result.rows
                externals = sparse_result.external_rows()
                require(
                    len(externals) == len(dense_rows)
                    and all(
                        tuple(id_map.to_dense(np.asarray(row, dtype=np.int64)))
                        == dense
                        for row, dense in zip(externals, dense_rows)
                    ),
                    f"{name}: external rows are not the IdMap image of the "
                    f"dense rows",
                )

                sparse_total += sparse_seconds
                dense_total += dense_seconds
                rows.append(
                    {
                        "motif": name,
                        "matches": len(dense_rows),
                        "sparse_seconds": round(sparse_seconds, 4),
                        "dense_seconds": round(dense_seconds, 4),
                        "overhead": round(
                            sparse_seconds / max(dense_seconds, 1e-9), 3
                        ),
                    }
                )

        # Snapshot round trip: the IdMap must survive persistence.
        workdir = Path(tempfile.mkdtemp(prefix="bench_real_dataset_"))
        try:
            snapshot = workdir / "snap"
            sparse_cloud.save_snapshot(snapshot)
            reopened = MemoryCloud.open_snapshot(snapshot)
            try:
                require(
                    reopened.id_map is not None and reopened.id_map == id_map,
                    "the reopened snapshot lost its IdMap",
                )
                query = MOTIFS["coauthor-triangle"]()
                with SubgraphMatcher(reopened) as matcher:
                    reopened_rows = sorted(
                        matcher.match(query, limit=limit).external_rows()
                    )
                with SubgraphMatcher(sparse_cloud) as matcher:
                    reference_rows = sorted(
                        matcher.match(query, limit=limit).external_rows()
                    )
                require(
                    reopened_rows == reference_rows,
                    "the reopened snapshot answers with different external rows",
                )
            finally:
                reopened.close()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    finally:
        sparse_cloud.close()
        dense_cloud.close()

    overhead = sparse_total / max(dense_total, 1e-9)
    require(
        overhead <= MAX_OVERHEAD,
        f"sparse-ID motif suite took {overhead:.2f}x the compacted run "
        f"(ceiling {MAX_OVERHEAD}x)",
    )
    return {
        "nodes": sparse_graph.node_count,
        "edges": sparse_graph.edge_count,
        "machines": machine_count,
        "limit": limit,
        "sparse_ingest_seconds": round(sparse_ingest_seconds, 4),
        "dense_ingest_seconds": round(dense_ingest_seconds, 4),
        "sparse_total_seconds": round(sparse_total, 4),
        "dense_total_seconds": round(dense_total, 4),
        "overhead": round(overhead, 3),
        "parity": round(dense_total / max(sparse_total, 1e-9), 3),
        "motifs": rows,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_report_arguments(parser)
    parser.add_argument("--machines", type=int, default=4)
    args = parser.parse_args(argv)

    limit = 1024 if args.quick else None
    summary = run(args.machines, limit)
    for row in summary["motifs"]:
        print(
            f"{row['motif']}: {row['matches']} matches, sparse "
            f"{row['sparse_seconds']}s vs compacted {row['dense_seconds']}s "
            f"({row['overhead']}x)"
        )
    print(
        f"suite: sparse {summary['sparse_total_seconds']}s vs compacted "
        f"{summary['dense_total_seconds']}s -> overhead "
        f"{summary['overhead']}x (ceiling {MAX_OVERHEAD}x), parity "
        f"{summary['parity']}; snapshot round trip ok"
    )
    report = {
        "benchmark": "real_dataset",
        "quick": bool(args.quick),
        "rows": summary["motifs"],
        "aggregate": {
            "parity": summary["parity"],
            "overhead": summary["overhead"],
        },
        "dataset": {
            "path": str(DATA_PATH.relative_to(DATA_PATH.parent.parent)),
            "nodes": summary["nodes"],
            "edges": summary["edges"],
        },
    }
    save_report(
        report,
        RESULTS_PATH if not args.quick else RESULTS_PATH.with_suffix(".quick.json"),
        no_save=args.no_save,
        out=args.out,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
