"""Nightly scale gate: million-node generate -> load -> query, end to end.

Exercises the full pipeline at the scale the paper's Table 2 sweep starts
at: generate a 1M-node power-law and a 1M-node R-MAT graph with the
vectorized generators, bulk-load each into a simulated memory cloud, and
run one end-to-end STwig query.  Fails (non-zero exit) if generation
undershoots its edge target by more than 2%, if loading or matching raises,
or if any stage exceeds a generous wall-clock budget — the symptom of a
scalar path sneaking back into the pipeline.

Datasets are cached as persistent snapshots (``repro.storage``): the first
run generates and saves each graph, later runs reopen it via ``np.memmap``
in near-constant time, and every row reports how the dataset was obtained
(``dataset_source`` + ``dataset_seconds``) so the open-vs-generate saving
is visible in the report.  ``--refresh`` regenerates, ``--no-cache``
restores the old always-generate behavior, and ``REPRO_DATASET_CACHE``
relocates the cache directory.

Run ``python benchmarks/scale_smoke.py`` for the 1M gate (used by the
scheduled ``scale-smoke`` CI job), or ``--nodes 50000`` for a local spot
check.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from report_io import save_report

from repro.bench.harness import build_cloud
from repro.core.engine import SubgraphMatcher
from repro.core.planner import MatcherConfig
from repro.graph.generators.power_law import generate_power_law
from repro.graph.generators.rmat import generate_rmat
from repro.graph.stats import generation_report
from repro.query.generators import dfs_query
from repro.storage.cache import cached_graph, default_cache_dir
from repro.workloads.datasets import DEFAULT_SEED

#: Per-stage wall-clock budgets at 1M nodes (seconds).  The vectorized
#: pipeline runs each stage in single-digit seconds; the budgets are ~10x
#: that so CI hardware noise never trips them, while a reverted scalar path
#: (minutes per stage) always does.
STAGE_BUDGET_SECONDS = 120.0

MODELS = (
    ("power_law", lambda n, seed: generate_power_law(n, 8.0, label_density=1e-3, seed=seed)),
    ("rmat", lambda n, seed: generate_rmat(n, 8.0, label_density=1e-3, seed=seed)),
)


def run_model(
    name: str,
    factory,
    node_count: int,
    machine_count: int,
    cache_dir: Optional[Path] = None,
    refresh: bool = False,
) -> Dict[str, object]:
    if cache_dir is None:
        started = time.perf_counter()
        graph = factory(node_count, DEFAULT_SEED)
        dataset_info: Dict[str, object] = {
            "source": "generated",
            "generate_seconds": time.perf_counter() - started,
        }
    else:
        graph, dataset_info = cached_graph(
            cache_dir,
            f"{name}_{node_count}",
            lambda: factory(node_count, DEFAULT_SEED),
            refresh=refresh,
        )
    generate_seconds = float(
        dataset_info.get("generate_seconds", dataset_info.get("open_seconds", 0.0))
    )
    # A snapshot-opened graph carries no generation metadata; the undershoot
    # gate ran when the snapshot was first written.
    report = generation_report(graph)
    if report is not None and report.achieved_ratio < 0.98:
        raise SystemExit(
            f"{name}: generation undershot its edge target "
            f"({report.achieved_edges}/{report.target_edges})"
        )

    started = time.perf_counter()
    cloud = build_cloud(graph, machine_count=machine_count)
    load_seconds = time.perf_counter() - started

    query = dfs_query(graph, 5, seed=3)
    matcher = SubgraphMatcher(cloud, MatcherConfig(max_stwig_leaves=3))
    started = time.perf_counter()
    result = matcher.match(query, limit=1024)
    query_seconds = time.perf_counter() - started

    row = {
        "model": name,
        "nodes": graph.node_count,
        "edges": graph.edge_count,
        "achieved_edge_ratio": (
            round(report.achieved_ratio, 4) if report is not None else None
        ),
        "dataset_source": dataset_info["source"],
        "generate_seconds": round(generate_seconds, 2),
        "load_seconds": round(load_seconds, 2),
        "query_seconds": round(query_seconds, 2),
        "query_nodes": query.node_count,
        "matches": result.match_count,
    }
    stage = "open" if dataset_info["source"] == "snapshot" else "gen"
    print(
        f"{name}: {row['nodes']} nodes / {row['edges']} edges "
        f"{stage} {row['generate_seconds']}s load {row['load_seconds']}s "
        f"query {row['query_seconds']}s -> {row['matches']} matches"
    )
    for stage in ("generate_seconds", "load_seconds", "query_seconds"):
        if row[stage] > STAGE_BUDGET_SECONDS:
            raise SystemExit(
                f"{name}: {stage} = {row[stage]}s exceeds the "
                f"{STAGE_BUDGET_SECONDS}s scale budget"
            )
    return row


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=1_000_000)
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument(
        "--out", type=Path, default=None, help="write the report JSON to this path"
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="dataset snapshot cache (default: benchmarks/.dataset_cache, "
        "override with REPRO_DATASET_CACHE)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always regenerate, never touch the snapshot cache",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="regenerate and overwrite any cached snapshots",
    )
    args = parser.parse_args(argv)

    cache_dir: Optional[Path] = None
    if not args.no_cache:
        cache_dir = args.cache_dir or default_cache_dir(
            os.environ.get("REPRO_DATASET_CACHE")
        )

    rows = [
        run_model(
            name, factory, args.nodes, args.machines,
            cache_dir=cache_dir, refresh=args.refresh,
        )
        for name, factory in MODELS
    ]
    report = {"nodes": args.nodes, "machines": args.machines, "models": rows}
    if args.out is not None:
        save_report(report, args.out, no_save=True, out=args.out)
    print("scale smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
