"""Nightly scale gate: million-node generate -> load -> query, end to end.

Exercises the full pipeline at the scale the paper's Table 2 sweep starts
at: generate a 1M-node power-law and a 1M-node R-MAT graph with the
vectorized generators, bulk-load each into a simulated memory cloud, and
run one end-to-end STwig query.  Fails (non-zero exit) if generation
undershoots its edge target by more than 2%, if loading or matching raises,
or if any stage exceeds a generous wall-clock budget — the symptom of a
scalar path sneaking back into the pipeline.

Run ``python benchmarks/scale_smoke.py`` for the 1M gate (used by the
scheduled ``scale-smoke`` CI job), or ``--nodes 50000`` for a local spot
check.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from report_io import save_report

from repro.bench.harness import build_cloud
from repro.core.engine import SubgraphMatcher
from repro.core.planner import MatcherConfig
from repro.graph.generators.power_law import generate_power_law
from repro.graph.generators.rmat import generate_rmat
from repro.graph.stats import generation_report
from repro.query.generators import dfs_query
from repro.workloads.datasets import DEFAULT_SEED

#: Per-stage wall-clock budgets at 1M nodes (seconds).  The vectorized
#: pipeline runs each stage in single-digit seconds; the budgets are ~10x
#: that so CI hardware noise never trips them, while a reverted scalar path
#: (minutes per stage) always does.
STAGE_BUDGET_SECONDS = 120.0

MODELS = (
    ("power_law", lambda n, seed: generate_power_law(n, 8.0, label_density=1e-3, seed=seed)),
    ("rmat", lambda n, seed: generate_rmat(n, 8.0, label_density=1e-3, seed=seed)),
)


def run_model(name: str, factory, node_count: int, machine_count: int) -> Dict[str, object]:
    started = time.perf_counter()
    graph = factory(node_count, DEFAULT_SEED)
    generate_seconds = time.perf_counter() - started
    report = generation_report(graph)
    if report.achieved_ratio < 0.98:
        raise SystemExit(
            f"{name}: generation undershot its edge target "
            f"({report.achieved_edges}/{report.target_edges})"
        )

    started = time.perf_counter()
    cloud = build_cloud(graph, machine_count=machine_count)
    load_seconds = time.perf_counter() - started

    query = dfs_query(graph, 5, seed=3)
    matcher = SubgraphMatcher(cloud, MatcherConfig(max_stwig_leaves=3))
    started = time.perf_counter()
    result = matcher.match(query, limit=1024)
    query_seconds = time.perf_counter() - started

    row = {
        "model": name,
        "nodes": graph.node_count,
        "edges": graph.edge_count,
        "achieved_edge_ratio": round(report.achieved_ratio, 4),
        "generate_seconds": round(generate_seconds, 2),
        "load_seconds": round(load_seconds, 2),
        "query_seconds": round(query_seconds, 2),
        "query_nodes": query.node_count,
        "matches": result.match_count,
    }
    print(
        f"{name}: {row['nodes']} nodes / {row['edges']} edges "
        f"gen {row['generate_seconds']}s load {row['load_seconds']}s "
        f"query {row['query_seconds']}s -> {row['matches']} matches"
    )
    for stage in ("generate_seconds", "load_seconds", "query_seconds"):
        if row[stage] > STAGE_BUDGET_SECONDS:
            raise SystemExit(
                f"{name}: {stage} = {row[stage]}s exceeds the "
                f"{STAGE_BUDGET_SECONDS}s scale budget"
            )
    return row


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=1_000_000)
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument(
        "--out", type=Path, default=None, help="write the report JSON to this path"
    )
    args = parser.parse_args(argv)

    rows = [
        run_model(name, factory, args.nodes, args.machines)
        for name, factory in MODELS
    ]
    report = {"nodes": args.nodes, "machines": args.machines, "models": rows}
    if args.out is not None:
        save_report(report, args.out, no_save=True, out=args.out)
    print("scale smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
