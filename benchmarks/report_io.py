"""Shared CLI/report-saving helpers for the standalone benchmark scripts.

Every comparison benchmark supports the same three knobs — ``--quick`` for
a CI-sized run, ``--no-save`` to skip the canonical results JSON, and
``--out`` to drop a copy where CI collects artifacts.  The argument wiring
and the save logic live here once.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional


def add_report_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the standard ``--quick`` / ``--no-save`` / ``--out`` options."""
    parser.add_argument("--quick", action="store_true", help="CI-sized smoke run")
    parser.add_argument(
        "--no-save", action="store_true", help="skip writing the results JSON"
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="also write the report JSON to this path (e.g. a CI artifact dir)",
    )


def save_report(
    report: dict,
    default_path: Path,
    no_save: bool = False,
    out: Optional[Path] = None,
) -> None:
    """Write ``report`` to its canonical path and/or an explicit ``--out``."""
    payload = json.dumps(report, indent=2) + "\n"
    if not no_save:
        default_path.parent.mkdir(parents=True, exist_ok=True)
        default_path.write_text(payload, encoding="utf-8")
        print(f"[saved to {default_path}]")
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(payload, encoding="utf-8")
        print(f"[saved to {out}]")
