"""Table 1 — existing subgraph matching methods vs. STwig.

Regenerates the analytic index size / index time / update cost columns at
Facebook scale and the measured index sizes of the methods we implement,
and benchmarks building the STwig string index (the only index the paper's
approach needs).
"""

from __future__ import annotations

from repro.bench.experiments import table1_method_comparison
from repro.bench.harness import build_cloud
from repro.workloads.datasets import patents_small

from conftest import save_rows


def test_table1_method_comparison(benchmark, results_dir):
    graph = patents_small()
    rows = benchmark.pedantic(
        lambda: table1_method_comparison(measured_graph=graph), rounds=1, iterations=1
    )
    save_rows(results_dir, "table1_methods", rows, "Table 1: index cost comparison")
    methods = {row["method"] for row in rows}
    assert "STwig" in methods and "R-Join" in methods
    stwig = next(row for row in rows if row["method"] == "STwig")
    assert stwig["feasible_at_scale"] is True


def test_table1_stwig_index_build(benchmark):
    """Building the linear string index on the Patents-like graph."""
    graph = patents_small()
    cloud = benchmark(lambda: build_cloud(graph, machine_count=4))
    assert cloud.node_count == graph.node_count
