"""CSR substrate vs. the seed dict representation, head to head.

The repository originally stored each machine's partition as a Python dict
of per-node ``NodeCell`` objects and answered ``Index.hasLabel`` with one
Python call per neighbor.  The CSR refactor replaced that with interned
label IDs, offset+neighbor arrays, and batched vectorized label filtering.
This benchmark quantifies the difference on the paper's workload shape:

* **STwig matching speed** — the exploration phase of the same query plans
  is executed twice through the identical driver
  (:func:`repro.core.exploration.explore`): once against a faithful
  re-implementation of the seed dict store with the seed's per-neighbor
  probe matcher, once against the CSR memory cloud with the batched
  matcher.  Result tables are checked row-for-row equal.
* **Per-machine memory** — the bytes held by the seed-style dict store vs.
  the CSR arrays, measured with ``tracemalloc`` (allocation truth) and
  ``sys.getsizeof`` / ``ndarray.nbytes`` (structure size).

Run ``python benchmarks/bench_csr_substrate.py`` for the paper-scale
100k-node power-law comparison (writes ``benchmarks/results/csr_substrate.json``),
or ``--quick`` for a CI-sized smoke run.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
import tracemalloc
from itertools import product
from pathlib import Path
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import ClusterConfig
from repro.cloud.metrics import CloudMetrics
from repro.core.engine import SubgraphMatcher
from repro.core.exploration import explore
from repro.core.planner import MatcherConfig
from repro.core.result import MatchTable
from repro.graph.generators.power_law import generate_power_law
from repro.graph.labeled_graph import LabeledGraph, NodeCell
from repro.query.generators import dfs_query


# --------------------------------------------------------------------------
# Faithful re-implementation of the seed (pre-CSR) representation: dict of
# NodeCell objects per machine, dict label index, one hasLabel per neighbor.
# --------------------------------------------------------------------------


class SeedLabelIndex:
    """The seed's dict-based per-machine label index."""

    def __init__(self) -> None:
        self._label_to_nodes: Dict[str, List[int]] = {}
        self._node_to_label: Dict[int, str] = {}

    def add(self, node_id: int, label: str) -> None:
        self._label_to_nodes.setdefault(label, []).append(node_id)
        self._node_to_label[node_id] = label

    def sort(self) -> None:
        for nodes in self._label_to_nodes.values():
            nodes.sort()

    def get_ids(self, label: str) -> Tuple[int, ...]:
        return tuple(self._label_to_nodes.get(label, ()))

    def has_label(self, node_id: int, label: str) -> bool:
        return self._node_to_label.get(node_id) == label


class SeedMachine:
    """The seed's dict-of-NodeCell partition store."""

    def __init__(self, machine_id: int) -> None:
        self.machine_id = machine_id
        self.cells: Dict[int, NodeCell] = {}
        self.label_index = SeedLabelIndex()

    def store_cell(self, node_id: int, label: str, neighbors: Tuple[int, ...]) -> None:
        self.cells[node_id] = NodeCell(node_id, label, neighbors)
        self.label_index.add(node_id, label)


class SeedCloud:
    """Enough of the seed MemoryCloud surface to drive the exploration phase."""

    def __init__(self, graph: LabeledGraph, reference: MemoryCloud) -> None:
        self.machine_count = reference.machine_count
        self.metrics = CloudMetrics()
        self._owner: Dict[int, int] = {}
        self.machines = [SeedMachine(m) for m in range(self.machine_count)]
        for machine in reference.machines:
            for node_id in machine.local_nodes():
                self._owner[node_id] = machine.machine_id
        for node_id in graph.nodes():
            cell = graph.cell(node_id)
            self.machines[self._owner[node_id]].store_cell(
                node_id, cell.label, cell.neighbors
            )
        for machine in self.machines:
            machine.label_index.sort()

    def owner_of(self, node_id: int) -> int:
        return self._owner[node_id]

    def load(self, node_id: int, requester: Optional[int] = None) -> NodeCell:
        owner = self._owner[node_id]
        cell = self.machines[owner].cells[node_id]
        self.metrics.record_load(
            -1 if requester is None else requester, owner, len(cell.neighbors)
        )
        return cell

    def get_local_ids(self, machine_id: int, label: str) -> Tuple[int, ...]:
        ids = self.machines[machine_id].label_index.get_ids(label)
        self.metrics.record_index_lookup(machine_id, len(ids))
        return ids

    def has_label(self, node_id: int, label: str, requester: Optional[int] = None) -> bool:
        owner = self._owner[node_id]
        self.metrics.record_label_probe(
            owner if requester is None else requester, owner
        )
        return self.machines[owner].label_index.has_label(node_id, label)


def seed_match_stwig(cloud, machine_id, stwig, query, bindings=None, row_limit=None):
    """The seed repository's match_stwig: per-root cell loads, one Python
    ``hasLabel`` call per neighbor per unbound leaf."""
    table = MatchTable(stwig.nodes)
    root_label = query.label(stwig.root)
    if bindings is not None and bindings.is_bound(stwig.root):
        bound = bindings.candidates(stwig.root) or set()
        root_candidates = tuple(
            sorted(n for n in bound if cloud.owner_of(n) == machine_id)
        )
    else:
        root_candidates = cloud.get_local_ids(machine_id, root_label)

    leaf_labels = [query.label(leaf) for leaf in stwig.leaves]
    for root_node in root_candidates:
        cell = cloud.load(root_node, requester=machine_id)
        slots: Optional[List[List[int]]] = []
        for leaf, leaf_label in zip(stwig.leaves, leaf_labels):
            bound = bindings.candidates(leaf) if bindings is not None else None
            if bound is not None:
                candidates = [n for n in cell.neighbors if n in bound]
            else:
                candidates = [
                    n
                    for n in cell.neighbors
                    if cloud.has_label(n, leaf_label, requester=machine_id)
                ]
            if not candidates:
                slots = None
                break
            slots.append(candidates)
        if slots is None:
            continue
        for combination in product(*slots):
            if len(set(combination)) != len(combination) or root_node in combination:
                continue
            table.add_row((root_node, *combination))
            if row_limit is not None and table.row_count >= row_limit:
                return table
    return table


# --------------------------------------------------------------------------
# Measurement
# --------------------------------------------------------------------------


def seed_store_nbytes(cloud: SeedCloud) -> int:
    """sys.getsizeof-based footprint of the seed dict representation."""
    total = 0
    for machine in cloud.machines:
        total += sys.getsizeof(machine.cells)
        for cell in machine.cells.values():
            total += sys.getsizeof(cell)
            total += sys.getsizeof(cell.neighbors)
            total += 28 * len(cell.neighbors)  # one small int object per entry
        index = machine.label_index
        total += sys.getsizeof(index._label_to_nodes)
        total += sys.getsizeof(index._node_to_label)
        for nodes in index._label_to_nodes.values():
            total += sys.getsizeof(nodes)
    return total


def traced(build):
    """Run ``build()`` under tracemalloc; return (result, allocated_bytes)."""
    tracemalloc.start()
    tracemalloc.reset_peak()
    before, _ = tracemalloc.get_traced_memory()
    result = build()
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, max(after - before, 0)


def exploration_outcome_signature(outcome) -> List[Tuple[int, ...]]:
    """Sorted row multiset of every per-machine table, for parity checks."""
    signature = []
    for per_machine in outcome.tables:
        for table in per_machine:
            signature.append(tuple(sorted(table.rows)))
    return signature


def run(args: argparse.Namespace) -> Dict[str, object]:
    node_count = 10_000 if args.quick else args.nodes
    query_count = 3 if args.quick else args.queries
    repeats = 2 if args.quick else args.repeats

    print(f"generating power-law graph: {node_count} nodes ...", flush=True)
    graph = generate_power_law(
        node_count,
        args.avg_degree,
        label_density=args.label_density,
        seed=args.seed,
    )
    print(f"  -> {graph!r}")

    cloud = MemoryCloud.from_graph(
        graph, ClusterConfig(machine_count=args.machines)
    )
    matcher = SubgraphMatcher(cloud, MatcherConfig(max_stwig_leaves=3))
    queries = [
        dfs_query(graph, args.query_size, seed=args.seed + i)
        for i in range(query_count)
    ]
    plans = [matcher.explain(query) for query in queries]

    print("building seed-style dict store ...", flush=True)
    seed_cloud, seed_alloc = traced(lambda: SeedCloud(graph, cloud))
    seed_bytes = seed_store_nbytes(seed_cloud)
    csr_bytes = sum(machine.storage_nbytes() for machine in cloud.machines)
    _, csr_alloc = traced(
        lambda: MemoryCloud.from_graph(graph, ClusterConfig(machine_count=args.machines))
    )

    legacy_times: List[float] = []
    csr_times: List[float] = []
    per_query: List[Dict[str, object]] = []
    for query, plan in zip(queries, plans):
        legacy_best = csr_best = float("inf")
        rows_legacy = rows_csr = -1
        for _ in range(repeats):
            began = time.perf_counter()
            legacy_outcome = explore(seed_cloud, plan, match_fn=seed_match_stwig)
            legacy_best = min(legacy_best, time.perf_counter() - began)

            began = time.perf_counter()
            csr_outcome = explore(cloud, plan)
            csr_best = min(csr_best, time.perf_counter() - began)

            rows_legacy = legacy_outcome.total_rows()
            rows_csr = csr_outcome.total_rows()
            if exploration_outcome_signature(legacy_outcome) != (
                exploration_outcome_signature(csr_outcome)
            ):
                raise AssertionError(
                    "CSR exploration diverged from the seed representation"
                )
        legacy_times.append(legacy_best)
        csr_times.append(csr_best)
        per_query.append(
            {
                "query_nodes": len(query.nodes()),
                "stwigs": len(plan.stwigs),
                "stwig_rows": rows_csr,
                "rows_match_seed": rows_legacy == rows_csr,
                "legacy_ms": round(legacy_best * 1000, 3),
                "csr_ms": round(csr_best * 1000, 3),
                "speedup": round(legacy_best / csr_best, 2) if csr_best else None,
            }
        )
        print(f"  query {len(per_query)}: {per_query[-1]}", flush=True)

    total_legacy = sum(legacy_times)
    total_csr = sum(csr_times)
    report = {
        "benchmark": "csr_substrate",
        "config": {
            "nodes": node_count,
            "avg_degree": args.avg_degree,
            "machines": args.machines,
            "query_size": args.query_size,
            "queries": query_count,
            "repeats": repeats,
            "seed": args.seed,
            "quick": bool(args.quick),
        },
        "graph": {"nodes": graph.node_count, "edges": graph.edge_count},
        "stwig_matching": {
            "legacy_seconds": round(total_legacy, 4),
            "csr_seconds": round(total_csr, 4),
            "speedup": round(total_legacy / total_csr, 2),
            "median_query_speedup": round(
                statistics.median(
                    legacy / csr for legacy, csr in zip(legacy_times, csr_times)
                ),
                2,
            ),
            "per_query": per_query,
        },
        "memory_per_cluster": {
            "legacy_store_bytes_getsizeof": seed_bytes,
            "legacy_store_bytes_tracemalloc": seed_alloc,
            "csr_store_bytes_nbytes": csr_bytes,
            "csr_cloud_bytes_tracemalloc": csr_alloc,
            "reduction_vs_getsizeof": round(seed_bytes / csr_bytes, 2)
            if csr_bytes
            else None,
        },
        "results_verified_equal": True,
    }
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=100_000)
    parser.add_argument("--avg-degree", type=float, default=6.0)
    parser.add_argument("--label-density", type=float, default=4e-4)
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument("--queries", type=int, default=6)
    parser.add_argument("--query-size", type=int, default=5)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--quick", action="store_true", help="CI-sized smoke run")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).parent / "results" / "csr_substrate.json",
    )
    args = parser.parse_args(argv)

    report = run(args)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    speedup = report["stwig_matching"]["speedup"]
    reduction = report["memory_per_cluster"]["reduction_vs_getsizeof"]
    print(
        f"\nSTwig matching speedup (CSR vs seed dicts): {speedup}x"
        f"\nper-machine store size reduction:           {reduction}x"
        f"\nreport written to {args.output}"
    )
    if not args.quick and speedup < 2.0:
        print("FAILED: expected >= 2x speedup", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
