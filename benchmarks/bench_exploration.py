"""Array-native exploration phase vs. the set-based baseline, head to head.

Before this change, every binding travelled through Python sets:
``BindingTable.bind`` converted each stage's ``np.unique`` output into a
set, intersected with Python ``&``, and the matcher's vectorized filters
re-materialized sorted arrays from those sets (``np.fromiter`` + sort) after
every narrowing — plus each machine independently re-scanned the full
binding array (and round-tripped it through ``.tolist()``) to find its local
roots, and every membership/owner/row question was a binary search.  The
array-native phase keeps one sorted ``NODE_DTYPE`` array per binding end to
end (``np.intersect1d``/``np.union1d``), partitions each stage's root
candidates by owner once, loads root cells owner-direct, and answers the
hot membership/owner/label/row lookups from cached dense O(1) tables.

This benchmark quantifies the difference on the paper's workload shape:

* **Exploration speed** — the same query plans are explored twice: once
  with a faithful frozen re-implementation of the set-based exploration
  phase as of the columnar-join PR (set-backed binding table, per-machine
  root scans with the ``.tolist()`` round trip, binary-search membership /
  owner / row / label lookups, identical metric recording), and once with
  the array-native driver.  Per-machine, per-STwig tables are verified
  row-for-row equal, final bindings equal, and the communication counters
  *identical* — the rework changes wall-clock only, never the per-node
  cost model.
* **Filtered gather** — the join phase's gather now binding-filters every
  part machine-side before the cross-machine concatenation (and before the
  simulated shipping).  Full and ``limit=1024`` assemblies are timed
  against the old gather-everything-then-filter baseline over identical
  exploration tables; answers are verified row-for-row equal.
* **Cross-validation** — engine answers on a suite of small seeded graphs
  are checked against VF2 exactly.

Run ``python benchmarks/bench_exploration.py`` for the paper-scale
100k-node power-law comparison (writes
``benchmarks/results/exploration.json``), or ``--quick`` for a CI-sized
smoke run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from report_io import add_report_arguments, save_report

from repro.baselines.vf2 import vf2_match
from repro.cloud.cluster import MemoryCloud
from repro.cloud.config import ClusterConfig
from repro.core.distributed import assemble_results
from repro.core.engine import SubgraphMatcher
from repro.core.exploration import ExplorationOutcome, ExplorationTables
from repro.core.exploration import explore as array_explore
from repro.core.join import multiway_join
from repro.core.matcher import _stwig_rows
from repro.core.planner import MatcherConfig, QueryPlan, QueryPlanner
from repro.core.result import MatchTable
from repro.graph.generators.erdos_renyi import generate_gnm
from repro.graph.generators.power_law import generate_power_law
from repro.graph.labeled_graph import NODE_DTYPE, OFFSET_DTYPE
from repro.query.generators import dfs_query
from repro.utils.arrays import membership_mask, sorted_lookup

RESULTS_PATH = Path(__file__).parent / "results" / "exploration.json"


# --------------------------------------------------------------------------
# Faithful frozen re-implementation of the set-based exploration phase as of
# the columnar-join PR: a set-backed binding table (with the sorted-array
# cache that is dropped on every narrowing), a per-machine exploration loop
# whose root scans round-trip through ``.tolist()``, binary-search
# membership / owner / row / label lookups, and identical metric recording.
# --------------------------------------------------------------------------


class SetBindingTable:
    """The pre-array BindingTable: Python sets + a fragile array cache."""

    def __init__(self, query) -> None:
        self._query = query
        self._bindings: Dict[str, Optional[Set[int]]] = {
            node: None for node in query.nodes()
        }
        self._array_cache: Dict[str, np.ndarray] = {}

    def is_bound(self, node: str) -> bool:
        return self._bindings[node] is not None

    def candidates(self, node: str) -> Optional[Set[int]]:
        return self._bindings[node]

    def candidates_array(self, node: str) -> Optional[np.ndarray]:
        candidates = self._bindings[node]
        if candidates is None:
            return None
        cached = self._array_cache.get(node)
        if cached is None:
            cached = np.fromiter(candidates, dtype=NODE_DTYPE, count=len(candidates))
            cached.sort()
            self._array_cache[node] = cached
        return cached

    def bind(self, node: str, data_nodes) -> None:
        from_array = isinstance(data_nodes, np.ndarray)
        new_set = set(data_nodes.tolist()) if from_array else set(data_nodes)
        current = self._bindings[node]
        # The baseline bug: the cache is dropped even on the narrowing path,
        # so every later STwig re-materializes and re-sorts the array.
        self._array_cache.pop(node, None)
        if current is None:
            self._bindings[node] = new_set
            if from_array:
                cached = np.array(data_nodes, dtype=NODE_DTYPE)
                cached.sort()
                self._array_cache[node] = cached
        else:
            self._bindings[node] = current & new_set

    def any_empty(self) -> bool:
        return any(
            candidates is not None and not candidates
            for candidates in self._bindings.values()
        )

    def bound_nodes(self) -> Dict[str, Set[int]]:
        return {
            node: set(candidates)
            for node, candidates in self._bindings.items()
            if candidates is not None
        }


def baseline_owners_of_array(cloud, node_ids: np.ndarray) -> np.ndarray:
    """The pre-dense owner lookup: binary search over the partition map."""
    sorted_ids, machines = cloud._assignment.as_arrays()
    positions, _ = sorted_lookup(sorted_ids, node_ids)
    return machines[positions]


def baseline_load_rows(machine, node_ids: np.ndarray):
    """The pre-dense ``Machine.load_rows``: binary-search row resolution."""
    if len(node_ids) == 0:
        return np.empty(0, dtype=NODE_DTYPE), np.empty(0, dtype=OFFSET_DTYPE)
    rows, _ = sorted_lookup(machine._ids, node_ids)
    starts = machine._offsets[rows]
    counts = machine._offsets[rows + 1] - starts
    out_offsets = np.zeros(len(rows) + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=out_offsets[1:])
    gather = (
        np.arange(out_offsets[-1], dtype=OFFSET_DTYPE)
        + np.repeat(starts - out_offsets[:-1], counts)
    )
    return machine._neighbors[gather], counts


def baseline_load_neighbors_batch(cloud, node_ids: np.ndarray, requester: int):
    """The pre-owner-hint batched load: per-node owner resolution first.

    Metric recording is byte-for-byte the production accounting.
    """
    owners = baseline_owners_of_array(cloud, node_ids)
    distinct = np.unique(owners).tolist()
    if len(distinct) == 1:
        owner = distinct[0]
        neighbors, counts = baseline_load_rows(cloud.machines[owner], node_ids)
        cloud.metrics.record_loads(requester, owner, len(node_ids), int(counts.sum()))
        return neighbors, counts
    counts = np.zeros(len(node_ids), dtype=OFFSET_DTYPE)
    parts = {}
    for owner in distinct:
        selector = owners == owner
        part_neighbors, part_counts = baseline_load_rows(
            cloud.machines[owner], node_ids[selector]
        )
        counts[selector] = part_counts
        parts[owner] = part_neighbors
        cloud.metrics.record_loads(
            requester, owner, int(selector.sum()), int(part_counts.sum())
        )
    offsets = np.zeros(len(node_ids) + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    neighbors = np.empty(int(offsets[-1]), dtype=NODE_DTYPE)
    for owner in distinct:
        selector = owners == owner
        starts = offsets[:-1][selector]
        owner_counts = counts[selector]
        span = np.zeros(len(owner_counts) + 1, dtype=OFFSET_DTYPE)
        np.cumsum(owner_counts, out=span[1:])
        scatter = (
            np.arange(span[-1], dtype=OFFSET_DTYPE)
            + np.repeat(starts - span[:-1], owner_counts)
        )
        neighbors[scatter] = parts[owner]
    return neighbors, counts


def baseline_batch_has_label(cloud, node_ids, label, requester, owners=None):
    """The pre-dense batched ``Index.hasLabel``: global binary search."""
    if len(node_ids) == 0:
        return np.empty(0, dtype=bool)
    if owners is None:
        owners = baseline_owners_of_array(cloud, node_ids)
    for owner, count in enumerate(
        np.bincount(owners, minlength=len(cloud.machines)).tolist()
    ):
        cloud.metrics.record_label_probes(requester, owner, count)
    label_id = cloud._label_table.id_of(label) if cloud._label_table else -1
    if label_id < 0:
        return np.zeros(len(node_ids), dtype=bool)
    positions, found = sorted_lookup(cloud._global_node_ids, node_ids)
    return found & (cloud._global_label_ids[positions] == label_id)


def baseline_match_stwig(cloud, machine_id, stwig, query, bindings=None):
    """The frozen pre-batching matcher: Algorithm 1 as of the join PR.

    Each machine re-scans the *full* binding array for the root
    (``owners_of_array`` over everything, then a ``.tolist()`` ->
    ``np.asarray`` round trip); leaf binding arrays come from the set
    table's fragile cache and are probed with binary-search membership; the
    batched loads/probes resolve owners, rows, and labels by binary search.
    Communication accounting is identical to the production matcher.
    """
    table = MatchTable(stwig.nodes)
    root_label = query.label(stwig.root)
    if bindings is not None and bindings.is_bound(stwig.root):
        bound = bindings.candidates_array(stwig.root)
        if bound is None or len(bound) == 0:
            roots: Sequence[int] = ()
        else:
            owners = baseline_owners_of_array(cloud, bound)
            roots = bound[owners == machine_id].tolist()
    else:
        roots = cloud.get_local_ids(machine_id, root_label)
    if len(roots) == 0:
        return table

    leaf_labels = [query.label(leaf) for leaf in stwig.leaves]
    leaf_bindings = [
        bindings.candidates_array(leaf) if bindings is not None else None
        for leaf in stwig.leaves
    ]

    root_array = np.asarray(roots, dtype=NODE_DTYPE)
    neighbors, counts = baseline_load_neighbors_batch(
        cloud, root_array, requester=machine_id
    )
    if not leaf_labels:
        table.add_rows(root_array.reshape(-1, 1))
        return table
    offsets = np.zeros(len(roots) + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    if offsets[-1] == 0:
        return table
    entry_root = np.repeat(np.arange(len(roots), dtype=OFFSET_DTYPE), counts)
    owners = None

    alive = np.ones(len(roots), dtype=bool)
    slot_values: List[np.ndarray] = []
    slot_bounds: List[np.ndarray] = []
    for leaf_label, bound in zip(leaf_labels, leaf_bindings):
        entry_alive = alive[entry_root]
        if bound is not None:
            kept = entry_alive & membership_mask(bound, neighbors)
        else:
            if owners is None:
                owners = baseline_owners_of_array(cloud, neighbors)
            probe_at = np.flatnonzero(entry_alive)
            hit = baseline_batch_has_label(
                cloud,
                neighbors[probe_at],
                leaf_label,
                requester=machine_id,
                owners=owners[probe_at],
            )
            kept = np.zeros(len(neighbors), dtype=bool)
            kept[probe_at[hit]] = True
        alive &= np.bincount(entry_root[kept], minlength=len(roots)).astype(bool)
        if not alive.any():
            return table
        slot_values.append(neighbors[kept])
        slot_bounds.append(np.searchsorted(np.flatnonzero(kept), offsets))

    if len(leaf_labels) == 1:
        values = slot_values[0]
        root_column = np.repeat(root_array, np.diff(slot_bounds[0]))
        keep = values != root_column
        block = np.empty((int(keep.sum()), 2), dtype=NODE_DTYPE)
        block[:, 0] = root_column[keep]
        block[:, 1] = values[keep]
        table.add_rows(block)
        return table

    blocks: List[np.ndarray] = []
    for index in np.flatnonzero(alive).tolist():
        root_node = int(root_array[index])
        slots = [
            values[bounds[index] : bounds[index + 1]]
            for values, bounds in zip(slot_values, slot_bounds)
        ]
        block = _stwig_rows(root_node, slots)
        if len(block):
            blocks.append(block)
    if blocks:
        table.add_rows(np.concatenate(blocks, axis=0))
    return table


def baseline_update_bindings(cloud, bindings, stwig_nodes, per_machine) -> None:
    """The baseline proxy merge: arrays unioned, then bound through sets."""
    union_per_node: Dict[str, List[np.ndarray]] = {node: [] for node in stwig_nodes}
    for machine_id, table in enumerate(per_machine):
        if table.row_count == 0:
            continue
        distinct_total = 0
        for node in stwig_nodes:
            values = table.column_distinct(node)
            union_per_node[node].append(values)
            distinct_total += len(values)
        cloud.metrics.record_result_transfer(
            sender=machine_id, receiver=-1, rows=distinct_total, row_width=1
        )
    for node, chunks in union_per_node.items():
        if chunks:
            merged = np.unique(np.concatenate(chunks))
        else:
            merged = np.empty(0, dtype=NODE_DTYPE)
        bindings.bind(node, merged)


def baseline_explore(cloud: MemoryCloud, plan: QueryPlan):
    """The baseline exploration driver: serial, unbatched per-machine scans."""
    query = plan.query
    config = plan.config
    machine_count = cloud.machine_count
    bindings = SetBindingTable(query)
    tables: ExplorationTables = [[] for _ in range(machine_count)]
    for stwig in plan.stwigs:
        stage_filter = bindings if config.use_binding_filter else None
        per_machine: List[MatchTable] = []
        for machine_id in range(machine_count):
            table = baseline_match_stwig(
                cloud, machine_id, stwig, query, bindings=stage_filter
            )
            per_machine.append(table)
            tables[machine_id].append(table)
        baseline_update_bindings(cloud, bindings, stwig.nodes, per_machine)
        if config.use_binding_filter and bindings.any_empty():
            for machine_id in range(machine_count):
                for skipped in plan.stwigs[len(tables[machine_id]):]:
                    tables[machine_id].append(MatchTable(skipped.nodes))
            break
    return tables, bindings


def baseline_filter_by_bindings(table: MatchTable, bindings) -> MatchTable:
    """The pre-dense final binding filter: binary-search masks per column."""
    if table.row_count == 0:
        return table
    keep = None
    for column in table.columns:
        candidates = bindings.candidates_array(column)
        if candidates is None:
            continue
        mask = membership_mask(candidates, table.column_array(column))
        keep = mask if keep is None else keep & mask
    if keep is None or keep.all():
        return table
    return MatchTable.from_array(table.columns, table.to_array()[keep])


def baseline_gather_machine_tables(
    cloud: MemoryCloud,
    plan: QueryPlan,
    exploration: ExplorationOutcome,
    machine_id: int,
) -> List[MatchTable]:
    """The pre-filtered gather for one machine: concatenate full tables."""
    machine_tables: List[MatchTable] = []
    for stwig_index in range(len(plan.stwigs)):
        local = exploration.tables[machine_id][stwig_index]
        if stwig_index == plan.head_index:
            machine_tables.append(local)
            continue
        parts = [local]
        for remote_machine in sorted(plan.load_set(machine_id, stwig_index)):
            remote = exploration.tables[remote_machine][stwig_index]
            if remote.row_count:
                cloud.metrics.record_result_transfer(
                    sender=remote_machine,
                    receiver=machine_id,
                    rows=remote.row_count,
                    row_width=remote.width,
                )
                parts.append(remote)
        if len(parts) == 1:
            machine_tables.append(local)
        else:
            combined = np.concatenate([part.to_array() for part in parts], axis=0)
            machine_tables.append(MatchTable.from_array(local.columns, combined))
    return machine_tables


def baseline_assemble_results(
    cloud: MemoryCloud,
    plan: QueryPlan,
    exploration: ExplorationOutcome,
    result_limit: Optional[int] = None,
):
    """The pre-filtered-gather join phase: ship everything, filter after.

    Every receiver concatenates the *full* remote tables (charging the full
    shipping) and only then applies the binding filter — a binary-search
    mask pass per column, re-derived per receiver — to each gathered
    table.  This per-receiver copy-and-scan floor is what the filtered
    gather removes.
    """
    query = plan.query
    final_columns = query.nodes()
    final = MatchTable(final_columns)
    if exploration.empty:
        return final
    config = plan.config
    probe_limit = None if result_limit is None else result_limit + 1
    for machine_id in range(cloud.machine_count):
        remaining = None if probe_limit is None else probe_limit - final.row_count
        if remaining is not None and remaining <= 0:
            break
        machine_tables = baseline_gather_machine_tables(
            cloud, plan, exploration, machine_id
        )
        if config.use_final_binding_filter:
            machine_tables = [
                baseline_filter_by_bindings(table, exploration.bindings)
                for table in machine_tables
            ]
        if any(table.row_count == 0 for table in machine_tables):
            continue
        joined = multiway_join(
            machine_tables,
            row_limit=remaining,
            block_size=config.block_size,
            sample_size=config.sample_size,
            rng=config.seed,
        )
        if joined.row_count == 0:
            continue
        normalized = joined.reorder(final_columns)
        take = (
            normalized.row_count
            if remaining is None
            else min(normalized.row_count, remaining)
        )
        final.add_rows(normalized.to_array()[:take])
    if result_limit is not None and final.row_count > result_limit:
        final.truncate(result_limit)
    return final


# --------------------------------------------------------------------------
# Benchmark driver
# --------------------------------------------------------------------------


def timed(fn, repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def canonical(rows) -> List[Tuple[int, ...]]:
    return sorted(tuple(row) for row in rows)


def tables_signature(tables: ExplorationTables) -> List[List[Tuple[int, ...]]]:
    return [[tuple(sorted(table.rows)) for table in machine] for machine in tables]


def verify_parity(cloud, plan, query) -> Tuple[ExplorationOutcome, Dict[str, int]]:
    """One instrumented run of each driver: equal tables, bindings, counters."""
    cloud.reset_metrics()
    baseline_tables, baseline_bindings = baseline_explore(cloud, plan)
    baseline_counters = cloud.metrics.snapshot()

    cloud.reset_metrics()
    outcome = array_explore(cloud, plan)
    array_counters = cloud.metrics.snapshot()

    if array_counters != baseline_counters:
        raise SystemExit(
            "COUNTER MISMATCH between set-based and array-native exploration: "
            f"{baseline_counters} vs {array_counters}"
        )
    if tables_signature(outcome.tables) != tables_signature(baseline_tables):
        raise SystemExit("ROW MISMATCH between set-based and array-native exploration")
    if outcome.bindings.bound_nodes() != baseline_bindings.bound_nodes():
        raise SystemExit("BINDING MISMATCH between set-based and array-native exploration")
    return outcome, array_counters


def run_exploration_comparison(quick: bool) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    node_count = 10_000 if quick else 100_000
    average_degree = 6.0
    # Few labels relative to nodes -> large binding sets, the regime where
    # the set<->array conversions and binary-search lookups used to dominate
    # the exploration loop (same labels-per-node ratio in both modes).
    label_density = 2e-3 if quick else 2e-4
    machine_count = 4
    query_sizes = (5,) if quick else (5, 6)
    seeds = range(3) if quick else range(6)
    repeats = 2 if quick else 3

    graph = generate_power_law(
        node_count, average_degree, label_density=label_density, seed=23
    )
    cloud = MemoryCloud.from_graph(graph, ClusterConfig(machine_count=machine_count))
    config = MatcherConfig(max_stwig_leaves=3)
    planner = QueryPlanner(cloud, config)

    per_query: List[Dict[str, object]] = []
    kept: List[Dict[str, object]] = []
    for size in query_sizes:
        for seed in seeds:
            query = dfs_query(graph, size, seed=seed)
            plan = planner.plan(query)
            outcome, counters = verify_parity(cloud, plan, query)

            baseline_seconds, _ = timed(lambda: baseline_explore(cloud, plan), repeats)
            array_seconds, outcome = timed(lambda: array_explore(cloud, plan), repeats)
            entry = {
                "query_size": size,
                "seed": seed,
                "stwigs": len(plan.stwigs),
                "stwig_result_rows": outcome.total_rows(),
                "binding_entries": sum(
                    len(values) for values in outcome.bindings.bound_nodes().values()
                ),
                "set_explore_seconds": round(baseline_seconds, 6),
                "array_explore_seconds": round(array_seconds, 6),
                "speedup": round(baseline_seconds / max(array_seconds, 1e-9), 2),
                "rows_equal": True,
                "counters_equal": True,
            }
            per_query.append(entry)
            kept.append({"plan": plan, "outcome": outcome, "entry": entry})

    baseline_total = sum(q["set_explore_seconds"] for q in per_query)
    array_total = sum(q["array_explore_seconds"] for q in per_query)
    report = {
        "workload": {
            "node_count": node_count,
            "average_degree": average_degree,
            "label_density": label_density,
            "machine_count": machine_count,
            "query_sizes": list(query_sizes),
            "seeds": len(list(seeds)),
            "max_stwig_leaves": config.max_stwig_leaves,
        },
        "per_query": per_query,
        "aggregate": {
            "queries": len(per_query),
            "set_explore_seconds": round(baseline_total, 4),
            "array_explore_seconds": round(array_total, 4),
            "speedup": round(baseline_total / max(array_total, 1e-9), 2),
        },
        "cloud": cloud,
    }
    return report, kept


def run_gather_comparison(
    cloud: MemoryCloud, kept: List[Dict[str, object]], quick: bool
) -> Dict[str, object]:
    """Filtered gather vs. ship-everything-then-filter on the fattest query."""
    repeats = 2 if quick else 3
    biggest = max(
        (item for item in kept if not item["outcome"].empty),
        key=lambda item: item["outcome"].total_rows(),
        default=None,
    )
    if biggest is None:
        return {}
    plan = biggest["plan"]
    outcome = biggest["outcome"]

    def run_new(limit=None):
        return assemble_results(cloud, plan, outcome, result_limit=limit)

    def run_old(limit=None):
        return baseline_assemble_results(cloud, plan, outcome, result_limit=limit)

    def gather_phase_old():
        tables = []
        for machine_id in range(cloud.machine_count):
            gathered = baseline_gather_machine_tables(cloud, plan, outcome, machine_id)
            tables.append(
                [baseline_filter_by_bindings(t, outcome.bindings) for t in gathered]
            )
        return tables

    def gather_phase_new():
        from repro.core.distributed import _gather_machine_tables

        cache: Dict[Tuple[int, int], MatchTable] = {}
        return [
            _gather_machine_tables(
                cloud, plan, outcome.tables, machine_id, outcome.bindings, cache
            )
            for machine_id in range(cloud.machine_count)
        ]

    # The gather phase in isolation: the copy-and-scan floor the filtered
    # gather attacks (every machine's R_k tables, no joins).
    gather_old_seconds, gather_old = timed(gather_phase_old, repeats)
    gather_new_seconds, gather_new = timed(gather_phase_new, repeats)
    for machine_old, machine_new in zip(gather_old, gather_new):
        for table_old, table_new in zip(machine_old, machine_new):
            if canonical(table_old.rows) != canonical(table_new.rows):
                raise SystemExit("GATHER MISMATCH between filtered and baseline path")

    # One full (unlimited) assemble each, for row verification only: the
    # full join is dominated by multiway_join (benchmarked head-to-head in
    # bench_join_engine.py), so its wall time says nothing about the gather.
    old_full = run_old()
    new_full = run_new()
    if canonical(new_full.table.rows) != canonical(old_full.rows):
        raise SystemExit("ROW MISMATCH between filtered-gather and baseline join")

    limit = 1024
    old_limited_seconds, old_limited = timed(lambda: run_old(limit), repeats)
    new_limited_seconds, new_limited = timed(lambda: run_new(limit), repeats)
    if new_limited.table.row_count != old_limited.row_count:
        raise SystemExit("LIMIT MISMATCH between filtered-gather and baseline join")

    cloud.reset_metrics()
    run_new()
    filtered_counters = cloud.metrics.snapshot()
    cloud.reset_metrics()
    run_old()
    baseline_counters = cloud.metrics.snapshot()
    shipped_invariant = (
        filtered_counters["result_rows_shipped"]
        + filtered_counters["result_rows_filtered"]
        == baseline_counters["result_rows_shipped"]
    )
    if not shipped_invariant:
        raise SystemExit("SHIPPING INVARIANT violated by the filtered gather")

    scaling = []
    for sweep_limit in (256, 1024, 4096):
        sweep_seconds, sweep = timed(lambda: run_new(sweep_limit), repeats)
        scaling.append(
            {
                "limit": sweep_limit,
                "rows": sweep.table.row_count,
                "filtered_gather_seconds": round(sweep_seconds, 6),
            }
        )

    return {
        "exploration_rows": outcome.total_rows(),
        "matches": old_full.row_count,
        "gather_phase": {
            "ship_then_filter_seconds": round(gather_old_seconds, 6),
            "filtered_gather_seconds": round(gather_new_seconds, 6),
            "speedup": round(gather_old_seconds / max(gather_new_seconds, 1e-9), 2),
        },
        "full_rows_equal": True,
        "limited": {
            "limit": limit,
            "rows": new_limited.table.row_count,
            "ship_then_filter_seconds": round(old_limited_seconds, 6),
            "filtered_gather_seconds": round(new_limited_seconds, 6),
            "speedup": round(old_limited_seconds / max(new_limited_seconds, 1e-9), 2),
        },
        "limit_scaling": scaling,
        "shipping": {
            "rows_shipped_baseline": baseline_counters["result_rows_shipped"],
            "rows_shipped_filtered": filtered_counters["result_rows_shipped"],
            "rows_filtered_sender_side": filtered_counters["result_rows_filtered"],
            "invariant_shipped_plus_filtered_equals_baseline": True,
        },
    }


def run_cross_validation(quick: bool) -> Dict[str, object]:
    """Engine answers (array-native exploration) vs VF2 on small graphs."""
    cases = 0
    for seed in range(3 if quick else 6):
        graph = generate_gnm(80, 220, label_count=3, seed=seed)
        cloud = MemoryCloud.from_graph(graph, ClusterConfig(machine_count=3))
        matcher = SubgraphMatcher(cloud)
        for size in (3, 4):
            query = dfs_query(graph, size, seed=seed + 100)
            expected = canonical(
                tuple(match[node] for node in query.nodes())
                for match in vf2_match(graph, query)
            )
            got = canonical(matcher.match(query).rows)
            if got != expected:
                raise SystemExit(
                    f"VF2 MISMATCH on gnm seed={seed} size={size}: "
                    f"{len(got)} engine vs {len(expected)} VF2 matches"
                )
            cases += 1
    return {"cases": cases, "all_equal": True}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_report_arguments(parser)
    args = parser.parse_args(argv)

    report, kept = run_exploration_comparison(quick=args.quick)
    cloud = report.pop("cloud")
    report["gather"] = run_gather_comparison(cloud, kept, quick=args.quick)
    report["cross_validation"] = run_cross_validation(quick=args.quick)
    report["mode"] = "quick" if args.quick else "full"

    aggregate = report["aggregate"]
    print(
        f"exploration phase over {aggregate['queries']} queries: "
        f"set-based {aggregate['set_explore_seconds']}s vs "
        f"array-native {aggregate['array_explore_seconds']}s "
        f"-> {aggregate['speedup']}x (rows + counters identical)"
    )
    if report["gather"]:
        gather = report["gather"]
        print(
            f"gather on {gather['matches']}-match query: gather phase "
            f"{gather['gather_phase']['ship_then_filter_seconds']}s -> "
            f"{gather['gather_phase']['filtered_gather_seconds']}s "
            f"({gather['gather_phase']['speedup']}x); limit=1024 assemble "
            f"{gather['limited']['ship_then_filter_seconds']}s -> "
            f"{gather['limited']['filtered_gather_seconds']}s "
            f"({gather['limited']['speedup']}x); "
            f"{gather['shipping']['rows_filtered_sender_side']} rows filtered "
            "before shipping"
        )
    print(f"cross-validation vs VF2: {report['cross_validation']['cases']} cases equal")

    save_report(report, RESULTS_PATH, no_save=args.no_save, out=args.out)

    if aggregate["speedup"] < 2.0 and not args.quick:
        print("WARNING: exploration speedup below 2x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
